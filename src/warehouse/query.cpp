#include "warehouse/query.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "common/error.h"
#include "common/pool.h"
#include "common/simd.h"
#include "warehouse/aggstate.h"
#include "warehouse/kernels.h"
#include "warehouse/partial.h"

namespace supremm::warehouse {

RowPredicate eq(std::string column, std::string value) {
  PredicateBounds b;
  b.column = column;
  b.equals = value;
  auto fn = [column = std::move(column), value = std::move(value)](const Table& t,
                                                                   std::size_t r) {
    return t.col(column).as_string(r) == value;
  };
  return {std::move(fn), {std::move(b)}, /*exact=*/true};
}

RowPredicate ge(std::string column, double value) {
  PredicateBounds b;
  b.column = column;
  b.lo = value;
  auto fn = [column = std::move(column), value](const Table& t, std::size_t r) {
    return t.col(column).as_double(r) >= value;
  };
  return {std::move(fn), {std::move(b)}, /*exact=*/true};
}

RowPredicate le(std::string column, double value) {
  PredicateBounds b;
  b.column = column;
  b.hi = value;
  auto fn = [column = std::move(column), value](const Table& t, std::size_t r) {
    return t.col(column).as_double(r) <= value;
  };
  return {std::move(fn), {std::move(b)}, /*exact=*/true};
}

RowPredicate between(std::string column, double lo, double hi) {
  PredicateBounds b;
  b.column = column;
  b.lo = lo;
  b.hi = hi;
  auto fn = [column = std::move(column), lo, hi](const Table& t, std::size_t r) {
    const double v = t.col(column).as_double(r);
    return v >= lo && v <= hi;
  };
  return {std::move(fn), {std::move(b)}, /*exact=*/true};
}

RowPredicate all_of(std::vector<RowPredicate> preds) {
  // A conjunction implies every conjunct's bounds, so the combined predicate
  // carries their concatenation; it stays exact only while every conjunct is.
  std::vector<PredicateBounds> bounds;
  bool exact = true;
  for (const auto& p : preds) {
    bounds.insert(bounds.end(), p.bounds().begin(), p.bounds().end());
    exact = exact && p.exact();
  }
  auto fn = [preds = std::move(preds)](const Table& t, std::size_t r) {
    for (const auto& p : preds) {
      if (!p(t, r)) return false;
    }
    return true;
  };
  return {std::move(fn), std::move(bounds), exact};
}

Query& Query::where(RowPredicate pred) {
  pred_ = std::move(pred);
  return *this;
}

Query& Query::group_by(std::vector<std::string> keys) {
  keys_ = std::move(keys);
  return *this;
}

Query& Query::aggregate(std::vector<AggSpec> aggs) {
  aggs_ = std::move(aggs);
  return *this;
}

Query& Query::threads(std::size_t n) {
  threads_ = n;
  return *this;
}

Query& Query::cancel_token(const common::CancelToken* token) {
  cancel_ = token;
  return *this;
}

namespace {

// Execution-chunk size when the table carries no zone index, and the
// canonical partial-aggregation segment length. Both are layout constants:
// the segment grid is laid over the ordered list of *matching* rows, so the
// aggregation arithmetic is independent of the scan chunking, the zone-map
// layout and the thread count.
constexpr std::size_t kExecChunkRows = 4096;
constexpr std::size_t kSegmentRows = 8192;
constexpr std::size_t kMaxGroupKeys = 4;

// canon_nan, default_agg_name, AggState and merge_state moved to
// warehouse/aggstate.h: the rollup layer must replicate this arithmetic
// byte-for-byte to keep materialized answers bit-identical to raw scans.

/// Typed, bounds-check-free view of a numeric column (int64 read as double,
/// matching Column::as_double).
struct NumRef {
  const double* f64 = nullptr;
  const std::int64_t* i64 = nullptr;

  [[nodiscard]] double value(std::size_t r) const {
    return f64 != nullptr ? f64[r] : static_cast<double>(i64[r]);
  }
};

NumRef numeric_ref(const Column& c) {
  if (c.type() == ColType::kString) {
    throw common::InvalidArgument("column " + std::string(c.name()) + " is not numeric");
  }
  NumRef ref;
  if (c.type() == ColType::kDouble) {
    ref.f64 = c.doubles().data();
  } else {
    ref.i64 = c.int64s().data();
  }
  return ref;
}

/// One group key column prepared for packing.
struct KeyRef {
  ColType type = ColType::kDouble;
  const double* f64 = nullptr;
  const std::int64_t* i64 = nullptr;
  const std::int32_t* codes = nullptr;
};

/// Fixed-width packed key tuple: dictionary code, raw int64 bits or the
/// double's exact bit pattern per key — never a decimal rendering, so
/// distinct doubles always land in distinct groups.
struct PackedKey {
  std::array<std::uint64_t, kMaxGroupKeys> w{};
  bool operator==(const PackedKey&) const = default;
};

struct PackedKeyHash {
  std::size_t operator()(const PackedKey& k) const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const std::uint64_t word : k.w) {
      std::uint64_t z = h ^ word;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      h = z ^ (z >> 31);
    }
    return static_cast<std::size_t>(h);
  }
};

/// A predicate conjunct compiled against column storage.
struct Kernel {
  NumRef num;                       // numeric range test
  const std::int32_t* codes = nullptr;  // string equality test
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  std::int32_t eq_code = 0;
  bool impossible = false;  // equality literal absent from the dictionary

  [[nodiscard]] bool pass(std::size_t r) const {
    if (codes != nullptr) return codes[r] == eq_code;
    const double v = num.value(r);
    return v >= lo && v <= hi;
  }
};

/// A conjunct usable for zone-map pruning: chunk survives unless its range
/// is disjoint from [lo, hi] for column `ci`.
struct PruneTest {
  std::size_t ci = 0;
  double lo = 0.0;
  double hi = 0.0;
  bool fail_all = false;  // equality literal absent from the whole table
};

struct ChunkResult {
  std::vector<std::uint32_t> sel;  // matching row indices, ascending
  std::size_t rows_scanned = 0;
  bool pruned = false;
};

struct SegmentPartial {
  std::vector<PackedKey> keys;             // first-seen order
  std::vector<std::uint32_t> example_row;  // first matching row per group
  std::vector<AggState> states;            // [group * naggs + agg]
};

/// Aggregation input for one AggSpec, column refs resolved once per query.
struct AggRef {
  AggKind kind = AggKind::kSum;
  NumRef value;
  NumRef weight;
};

// int64 predicate kernels have no vector tier (no packed i64→f64), so every
// tier shares these scalar loops — same arithmetic as NumRef::value.

std::size_t filter_i64_range(const std::int64_t* v, std::uint32_t begin, std::uint32_t end,
                             double lo, double hi, std::uint32_t* out) {
  std::size_t cnt = 0;
  for (std::uint32_t r = begin; r < end; ++r) {
    const double x = static_cast<double>(v[r]);
    if (x >= lo && x <= hi) out[cnt++] = r;
  }
  return cnt;
}

std::size_t refine_i64_range(const std::int64_t* v, const std::uint32_t* sel, std::size_t n,
                             double lo, double hi, std::uint32_t* out) {
  std::size_t cnt = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t r = sel[j];
    const double x = static_cast<double>(v[r]);
    if (x >= lo && x <= hi) out[cnt++] = r;
  }
  return cnt;
}

void update_aggs(const std::vector<AggRef>& agg_refs, AggState* st, std::uint32_t r) {
  for (std::size_t a = 0; a < agg_refs.size(); ++a) {
    const AggRef& spec = agg_refs[a];
    AggState& s = st[a];
    ++s.n;
    if (spec.kind == AggKind::kCount) continue;
    const double v = spec.value.value(r);
    s.sum += v;
    s.mn = std::min(s.mn, v);
    s.mx = std::max(s.mx, v);
    if (spec.kind == AggKind::kWeightedMean) {
      const double w = spec.weight.value(r);
      s.wsum += w;
      s.wvsum += w * v;
    }
  }
}

/// Weighted-mean lanes when either column is int64: shared scalar fallback,
/// same per-element arithmetic as kernels::dot_lanes (mul, then add).
void dot_lanes_numref(const NumRef& value, const NumRef& weight, const std::uint32_t* rows,
                      std::uint32_t base, std::size_t n, double* wlanes, double* wvlanes) {
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t r = rows != nullptr ? rows[j] : base + static_cast<std::uint32_t>(j);
    const double w = weight.value(r);
    const double t = w * value.value(r);
    wlanes[j % kernels::kLanes] += w;
    wvlanes[j % kernels::kLanes] += t;
  }
}

/// Ungrouped (no group keys) segment aggregation: the canonical 8-lane
/// scheme from DESIGN.md §15. Element j of the segment's match slice updates
/// lane j % 8 and the lanes fold with the fixed trees in kernels.h, so every
/// ISA tier — and the oracle's independent implementation — produces the
/// same bits. Only the stats a kind emits are computed.
void aggregate_ungrouped(SegmentPartial& part, const std::vector<AggRef>& agg_refs,
                         const kernels::KernelTable& kt, const std::uint32_t* rows,
                         std::uint32_t base, std::size_t len) {
  const std::size_t naggs = agg_refs.size();
  part.keys.emplace_back();
  part.example_row.push_back(rows != nullptr ? rows[0] : base);
  part.states.resize(naggs);
  for (std::size_t a = 0; a < naggs; ++a) {
    const AggRef& spec = agg_refs[a];
    AggState& s = part.states[a];
    s.n = static_cast<std::int64_t>(len);
    double lanes[kernels::kLanes];
    switch (spec.kind) {
      case AggKind::kCount:
        break;
      case AggKind::kSum:
      case AggKind::kMean:
        std::fill(std::begin(lanes), std::end(lanes), 0.0);
        if (spec.value.f64 != nullptr) {
          kt.sum_lanes(spec.value.f64, rows, base, len, lanes);
        } else {
          kernels::sum_lanes_i64(spec.value.i64, rows, base, len, lanes);
        }
        s.sum = kernels::fold_sum(lanes);
        break;
      case AggKind::kMin:
        std::fill(std::begin(lanes), std::end(lanes), std::numeric_limits<double>::infinity());
        if (spec.value.f64 != nullptr) {
          kt.min_lanes(spec.value.f64, rows, base, len, lanes);
        } else {
          kernels::min_lanes_i64(spec.value.i64, rows, base, len, lanes);
        }
        s.mn = kernels::fold_min(lanes);
        break;
      case AggKind::kMax:
        std::fill(std::begin(lanes), std::end(lanes), -std::numeric_limits<double>::infinity());
        if (spec.value.f64 != nullptr) {
          kt.max_lanes(spec.value.f64, rows, base, len, lanes);
        } else {
          kernels::max_lanes_i64(spec.value.i64, rows, base, len, lanes);
        }
        s.mx = kernels::fold_max(lanes);
        break;
      case AggKind::kWeightedMean: {
        double wlanes[kernels::kLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
        double wvlanes[kernels::kLanes] = {0, 0, 0, 0, 0, 0, 0, 0};
        if (spec.value.f64 != nullptr && spec.weight.f64 != nullptr) {
          kt.dot_lanes(spec.value.f64, spec.weight.f64, rows, base, len, wlanes, wvlanes);
        } else {
          dot_lanes_numref(spec.value, spec.weight, rows, base, len, wlanes, wvlanes);
        }
        s.wsum = kernels::fold_sum(wlanes);
        s.wvsum = kernels::fold_sum(wvlanes);
        break;
      }
    }
  }
}

/// Radix-partitioned hash group-by for one segment (the high-cardinality
/// path). Rows scatter stably into 2^6 buckets on the low hash bits — every
/// row of a group lands in the same bucket — then each bucket groups through
/// a small open-addressing table, so probe chains stay short and cache-local
/// with no per-row node allocation. Because the scatter is stable, rows of a
/// group accumulate in ascending match order (the exact sequential order the
/// contract fixes), and sorting the finished groups by first-match position
/// restores canonical first-seen order, independent of bucket layout.
void radix_group_segment(SegmentPartial& part, const std::vector<KeyRef>& key_refs,
                         const std::vector<AggRef>& agg_refs, const std::uint32_t* rows,
                         std::uint32_t base, std::size_t len) {
  constexpr std::size_t kRadixBits = 6;
  constexpr std::size_t kRadixBuckets = std::size_t{1} << kRadixBits;
  constexpr std::uint32_t kEmpty = std::numeric_limits<std::uint32_t>::max();
  const std::size_t naggs = agg_refs.size();

  const auto row_of = [rows, base](std::size_t j) {
    return rows != nullptr ? rows[j] : base + static_cast<std::uint32_t>(j);
  };

  // Pass 1: pack keys, hash, count buckets.
  std::vector<PackedKey> keys(len);
  std::vector<std::uint64_t> hashes(len);
  std::array<std::uint32_t, kRadixBuckets + 1> offsets{};
  for (std::size_t j = 0; j < len; ++j) {
    const std::uint32_t r = row_of(j);
    PackedKey key;
    for (std::size_t k = 0; k < key_refs.size(); ++k) {
      const KeyRef& ref = key_refs[k];
      switch (ref.type) {
        case ColType::kString:
          key.w[k] = static_cast<std::uint32_t>(ref.codes[r]);
          break;
        case ColType::kInt64:
          key.w[k] = static_cast<std::uint64_t>(ref.i64[r]);
          break;
        case ColType::kDouble:
          key.w[k] = std::bit_cast<std::uint64_t>(ref.f64[r]);
          break;
      }
    }
    keys[j] = key;
    const std::uint64_t h = PackedKeyHash{}(key);
    hashes[j] = h;
    ++offsets[(h & (kRadixBuckets - 1)) + 1];
  }
  std::uint32_t max_bucket = 0;
  for (std::size_t b = 0; b < kRadixBuckets; ++b) {
    max_bucket = std::max(max_bucket, offsets[b + 1]);
    offsets[b + 1] += offsets[b];
  }

  // Pass 2: stable scatter of segment positions into bucket order.
  std::vector<std::uint32_t> order(len);
  std::array<std::uint32_t, kRadixBuckets> cursor;
  std::copy(offsets.begin(), offsets.begin() + kRadixBuckets, cursor.begin());
  for (std::size_t j = 0; j < len; ++j) {
    order[cursor[hashes[j] & (kRadixBuckets - 1)]++] = static_cast<std::uint32_t>(j);
  }

  // Pass 3: per-bucket open addressing; groups carry their first position.
  std::size_t table_size = 8;
  while (table_size < static_cast<std::size_t>(max_bucket) * 2) table_size <<= 1;
  std::vector<std::uint32_t> slots(table_size);
  std::vector<PackedKey> gkeys;
  std::vector<std::uint32_t> gfirst;  // first segment position of the group
  std::vector<AggState> gstates;
  for (std::size_t b = 0; b < kRadixBuckets; ++b) {
    const std::uint32_t bb = offsets[b], be = offsets[b + 1];
    if (bb == be) continue;
    std::fill(slots.begin(), slots.end(), kEmpty);
    const std::size_t mask = table_size - 1;
    for (std::uint32_t o = bb; o < be; ++o) {
      const std::uint32_t j = order[o];
      const PackedKey& key = keys[j];
      std::size_t idx = (hashes[j] >> kRadixBits) & mask;
      std::uint32_t g;
      while (true) {
        g = slots[idx];
        if (g == kEmpty) {
          g = static_cast<std::uint32_t>(gkeys.size());
          slots[idx] = g;
          gkeys.push_back(key);
          gfirst.push_back(j);
          gstates.resize(gstates.size() + naggs);
          break;
        }
        if (gkeys[g] == key) break;
        idx = (idx + 1) & mask;
      }
      update_aggs(agg_refs, gstates.data() + std::size_t{g} * naggs, row_of(j));
    }
  }

  // Canonical order: sort groups by first-seen position within the segment.
  std::vector<std::uint32_t> gorder(gkeys.size());
  for (std::size_t g = 0; g < gorder.size(); ++g) gorder[g] = static_cast<std::uint32_t>(g);
  std::sort(gorder.begin(), gorder.end(),
            [&gfirst](std::uint32_t a, std::uint32_t b) { return gfirst[a] < gfirst[b]; });
  part.keys.reserve(gorder.size());
  part.example_row.reserve(gorder.size());
  part.states.reserve(gorder.size() * naggs);
  for (const std::uint32_t g : gorder) {
    part.keys.push_back(gkeys[g]);
    part.example_row.push_back(row_of(gfirst[g]));
    part.states.insert(part.states.end(), gstates.begin() + std::size_t{g} * naggs,
                       gstates.begin() + (std::size_t{g} + 1) * naggs);
  }
}

/// Micro-cell key for the time-partitioned contract: group-key words, then
/// partition-subkey words not already group keys, then the day index.
struct WideKey {
  std::array<std::uint64_t, 8> w{};
  bool operator==(const WideKey&) const = default;
};

struct WideKeyHash {
  std::size_t operator()(const WideKey& k) const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ull;
    for (const std::uint64_t word : k.w) {
      std::uint64_t z = h ^ word;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      h = z ^ (z >> 31);
    }
    return static_cast<std::size_t>(h);
  }
};

std::uint64_t key_ref_word(const KeyRef& ref, std::uint32_t r) {
  switch (ref.type) {
    case ColType::kString:
      return static_cast<std::uint32_t>(ref.codes[r]);
    case ColType::kInt64:
      return static_cast<std::uint64_t>(ref.i64[r]);
    case ColType::kDouble:
      return std::bit_cast<std::uint64_t>(ref.f64[r]);
  }
  return 0;
}

/// Planning + phase 1 of Query::run, shared with run_partial(): compile the
/// predicate into typed kernels, zone-prune, and produce the ordered match
/// list plus scan accounting.
struct ScanResult {
  QueryStats st;
  std::vector<std::uint32_t> matches;  // empty on the identity fast path
  bool identity = false;
  std::size_t total_matches = 0;
};

ScanResult scan_phase(const Table& table, const std::optional<RowPredicate>& pred,
                      std::size_t threads, const common::CancelToken* cancel) {
  const std::size_t nrows = table.rows();
  if (nrows > std::numeric_limits<std::uint32_t>::max()) {
    throw common::InvalidArgument("query: table exceeds 2^32 rows");
  }
  const auto check_cancel = [cancel] {
    if (cancel != nullptr && cancel->stop_requested()) {
      throw common::Cancelled("query abandoned at safe point");
    }
  };

  // Predicate plan. Exact predicates compile each conjunct into a typed
  // kernel; opaque ones fall back to the closure per row. Bounds over
  // existing columns additionally become zone-map prune tests.
  const bool have_pred = pred.has_value();
  const bool exact = have_pred && pred->exact();
  std::vector<Kernel> kernels;
  if (exact) {
    for (const auto& b : pred->bounds()) {
      const Column& c = table.col(b.column);
      Kernel k;
      if (b.equals) {
        if (c.type() != ColType::kString) {
          throw common::InvalidArgument("column " + b.column + " not string");
        }
        k.codes = c.codes().data();
        if (const auto code = c.find_code(*b.equals)) {
          k.eq_code = *code;
        } else {
          k.impossible = true;
        }
      } else {
        k.num = numeric_ref(c);
        k.lo = b.lo;
        k.hi = b.hi;
      }
      kernels.push_back(k);
    }
  }

  const ZoneIndex* zi = table.zone_index();
  const bool prune =
      have_pred && zi != nullptr && !pred->bounds().empty() && zi->chunks > 0;
  std::vector<PruneTest> prune_tests;
  if (prune) {
    for (const auto& b : pred->bounds()) {
      if (!table.has_col(b.column)) continue;
      std::size_t ci = 0;
      while (table.columns()[ci].name() != b.column) ++ci;
      const Column& c = table.columns()[ci];
      PruneTest t;
      t.ci = ci;
      if (b.equals) {
        if (c.type() != ColType::kString) continue;
        if (const auto code = c.find_code(*b.equals)) {
          t.lo = t.hi = static_cast<double>(*code);
        } else {
          t.fail_all = true;  // value absent from the whole table
        }
      } else {
        if (c.type() == ColType::kString) continue;
        t.lo = b.lo;
        t.hi = b.hi;
      }
      prune_tests.push_back(t);
    }
  }

  const std::size_t chunk_rows = prune ? zi->chunk_rows : kExecChunkRows;
  const std::size_t nchunks = nrows == 0 ? 0 : (nrows + chunk_rows - 1) / chunk_rows;
  ScanResult res;
  QueryStats& st = res.st;
  if (prune) st.chunks_total = zi->chunks;

  // ISA tier pinned once per run. The AVX2 kernels gather through row
  // indices as signed 32-bit lanes, so a table past 2^31 rows takes the
  // scalar table — legal at any time because every tier is bit-identical.
  const kernels::KernelTable& kt = nrows > (std::size_t{1} << 31)
                                       ? kernels::table_for(common::simd::Tier::kScalar)
                                       : kernels::active();

  // Per-run scan state, hoisted out of the pool workers: an equality literal
  // absent from its dictionary kills every chunk at once, and zone-map prune
  // decisions depend only on the chunk grid, so both are derived here once
  // instead of being re-tested inside every worker invocation.
  bool impossible = false;
  for (const auto& k : kernels) impossible = impossible || k.impossible;
  std::vector<std::uint8_t> chunk_pruned;
  if (prune) {
    chunk_pruned.assign(nchunks, 0);
    for (std::size_t ch = 0; ch < nchunks; ++ch) {
      for (const auto& t : prune_tests) {
        const ZoneIndex::Range& range = zi->ranges[t.ci][ch];
        if (t.fail_all || range.hi < t.lo || range.lo > t.hi) {
          chunk_pruned[ch] = 1;
          break;
        }
      }
    }
  }

  // Without a predicate every row matches and match index == row index, so
  // the selection vectors and the concatenated match list are pure memory
  // traffic — skip them and let phase 2 address rows directly.
  res.identity = !have_pred;
  std::vector<ChunkResult> chunks(res.identity ? 0 : nchunks);
  if (!res.identity) {
    common::pool_run(nchunks, threads, 0, [&](std::size_t ch) {
      check_cancel();
      ChunkResult& cres = chunks[ch];
      if (!chunk_pruned.empty() && chunk_pruned[ch] != 0) {
        cres.pruned = true;
        return;
      }
      const std::size_t begin = ch * chunk_rows;
      const std::size_t end = std::min(nrows, begin + chunk_rows);
      cres.rows_scanned = end - begin;
      if (exact && impossible) return;  // scanned, nothing matches
      auto& sel = cres.sel;
      if (exact) {
        sel.resize(end - begin);
        const auto b32 = static_cast<std::uint32_t>(begin);
        const auto e32 = static_cast<std::uint32_t>(end);
        std::size_t cnt = 0;
        if (kernels.empty()) {
          for (std::uint32_t r = b32; r < e32; ++r) sel[cnt++] = r;
        } else {
          const Kernel& k0 = kernels[0];
          if (k0.codes != nullptr) {
            cnt = kt.filter_codes_eq(k0.codes, b32, e32, k0.eq_code, sel.data());
          } else if (k0.num.f64 != nullptr) {
            cnt = kt.filter_f64_range(k0.num.f64, b32, e32, k0.lo, k0.hi, sel.data());
          } else {
            cnt = filter_i64_range(k0.num.i64, b32, e32, k0.lo, k0.hi, sel.data());
          }
          for (std::size_t k = 1; k < kernels.size() && cnt != 0; ++k) {
            const Kernel& kn = kernels[k];
            if (kn.codes != nullptr) {
              cnt = kt.refine_codes_eq(kn.codes, sel.data(), cnt, kn.eq_code, sel.data());
            } else if (kn.num.f64 != nullptr) {
              cnt = kt.refine_f64_range(kn.num.f64, sel.data(), cnt, kn.lo, kn.hi, sel.data());
            } else {
              cnt = refine_i64_range(kn.num.i64, sel.data(), cnt, kn.lo, kn.hi, sel.data());
            }
          }
        }
        sel.resize(cnt);
      } else {
        for (std::size_t r = begin; r < end; ++r) {
          if ((*pred)(table, r)) sel.push_back(static_cast<std::uint32_t>(r));
        }
      }
    });
  }

  if (res.identity) {
    st.rows_scanned = nrows;
    res.total_matches = nrows;
  } else {
    for (const auto& c : chunks) {
      if (c.pruned) ++st.chunks_pruned;
      st.rows_scanned += c.rows_scanned;
      res.total_matches += c.sel.size();
    }
    res.matches.reserve(res.total_matches);
    for (const auto& c : chunks) {
      res.matches.insert(res.matches.end(), c.sel.begin(), c.sel.end());
    }
  }
  st.rows_matched = res.total_matches;
  return res;
}

KeyRef make_key_ref(const Column& c) {
  KeyRef ref;
  ref.type = c.type();
  switch (c.type()) {
    case ColType::kDouble:
      ref.f64 = c.doubles().data();
      break;
    case ColType::kInt64:
      ref.i64 = c.int64s().data();
      break;
    case ColType::kString:
      ref.codes = c.codes().data();
      break;
  }
  return ref;
}

partial::KeyValue make_key_value(const Column& c, std::size_t r) {
  partial::KeyValue v;
  v.type = c.type();
  switch (c.type()) {
    case ColType::kString:
      v.str = std::string(c.as_string(r));
      break;
    case ColType::kInt64:
      v.i64 = c.as_int64(r);
      break;
    case ColType::kDouble:
      v.bits = std::bit_cast<std::uint64_t>(c.as_double(r));
      break;
  }
  return v;
}

}  // namespace

namespace partial {

// Phase 2 of the time-partitioned contract (DESIGN.md §16), extracted from
// the executor so a federation shard can ship the intermediate state.
// Values accumulate into micro-cells keyed by (group keys, partition
// subkeys, end-day) purely sequentially in match order — a cell is never
// split across segments or threads — then cells bucket into groups and,
// within each group, into partition sub-tuples; both orders inherit
// first-seen from the cells (= ascending first match position). Each
// sub-tuple's day cells come out sorted ascending, ready for the calendar
// tree fold (fold_groups locally, merge_partials at a coordinator). The
// cross-dimension merge stays outermost so the same numbers are
// reproducible from materialized rollup cells at ANY bucket level: a week
// cell is exactly the tree-fold of its day cells.
Collected collect(const Table& table, const std::vector<std::string>& group_by,
                  const std::vector<AggSpec>& aggs, const std::uint32_t* match_rows,
                  std::size_t total_matches, const std::string& rank_column,
                  const common::CancelToken* cancel) {
  if (table.time_partition().empty()) {
    throw common::InvalidArgument("partial collect: table has no time partition");
  }
  if (group_by.size() > kMaxGroupKeys) {
    throw common::InvalidArgument("query supports at most 4 group keys");
  }
  const auto check_cancel = [cancel] {
    if (cancel != nullptr && cancel->stop_requested()) {
      throw common::Cancelled("query abandoned at safe point");
    }
  };

  const std::size_t naggs = aggs.size();
  std::vector<KeyRef> key_refs;
  key_refs.reserve(group_by.size());
  for (const auto& k : group_by) key_refs.push_back(make_key_ref(table.col(k)));
  std::vector<AggRef> agg_refs;
  agg_refs.reserve(naggs);
  for (const auto& a : aggs) {
    AggRef ref;
    ref.kind = a.kind;
    if (a.kind != AggKind::kCount) {
      ref.value = numeric_ref(table.col(a.column));
      if (a.kind == AggKind::kWeightedMean) ref.weight = numeric_ref(table.col(a.weight));
    }
    agg_refs.push_back(ref);
  }

  const Column& tp = table.col(table.time_partition());
  const std::int64_t* end_vals = tp.int64s().data();

  std::vector<std::string> extra_names;  // partition subkeys not already group keys
  std::vector<KeyRef> extra_refs;
  for (const auto& name : table.time_partition_subkeys()) {
    if (std::find(group_by.begin(), group_by.end(), name) != group_by.end()) continue;
    extra_names.push_back(name);
    extra_refs.push_back(make_key_ref(table.col(name)));
  }
  const std::size_t nkeys = key_refs.size();
  const std::size_t nextra = extra_refs.size();
  if (nkeys + nextra + 1 > 8) {
    throw common::InvalidArgument("time-partitioned query: key + subkey tuple too wide");
  }

  const std::int64_t* rank_vals = nullptr;
  if (!rank_column.empty()) {
    const Column& rc = table.col(rank_column);
    if (rc.type() != ColType::kInt64) {
      throw common::InvalidArgument("partial collect: rank column " + rank_column +
                                    " must be int64");
    }
    rank_vals = rc.int64s().data();
  }

  // Pass 1: sequential micro-cell accumulation in match order.
  struct Cell {
    std::uint32_t example_row = 0;  // first matching row of the cell
    std::int64_t day = 0;
    std::int64_t rank = 0;  // min rank-column value over the cell's rows
  };
  std::unordered_map<WideKey, std::uint32_t, WideKeyHash> cell_index;
  std::vector<Cell> cells;              // first-seen order
  std::vector<AggState> cell_states;    // [cell * naggs + agg]
  for (std::size_t j = 0; j < total_matches; ++j) {
    if ((j & (kSegmentRows - 1)) == 0) check_cancel();
    const std::uint32_t r =
        match_rows != nullptr ? match_rows[j] : static_cast<std::uint32_t>(j);
    WideKey key;
    std::size_t k = 0;
    for (const auto& ref : key_refs) key.w[k++] = key_ref_word(ref, r);
    for (const auto& ref : extra_refs) key.w[k++] = key_ref_word(ref, r);
    const std::int64_t day = end_day_index(end_vals[r]);
    key.w[k] = static_cast<std::uint64_t>(day);
    const auto [it, inserted] = cell_index.emplace(key, static_cast<std::uint32_t>(cells.size()));
    if (inserted) {
      cells.push_back({r, day, rank_vals != nullptr ? rank_vals[r] : 0});
      cell_states.resize(cell_states.size() + naggs);
    } else if (rank_vals != nullptr) {
      Cell& cell = cells[it->second];
      cell.rank = std::min(cell.rank, rank_vals[r]);
    }
    update_aggs(agg_refs, cell_states.data() + std::size_t{it->second} * naggs, r);
  }
  check_cancel();

  // Pass 2: bucket cells into groups and sub-tuples, first-seen order.
  struct Sub {
    std::vector<std::uint32_t> cells;
  };
  std::unordered_map<WideKey, std::uint32_t, WideKeyHash> sub_index;  // words minus day
  std::vector<Sub> subs;
  std::unordered_map<PackedKey, std::uint32_t, PackedKeyHash> group_index;

  Collected out;
  out.naggs = naggs;
  for (const auto& k : group_by) out.key_schema.emplace_back(k, table.col(k).type());
  for (std::uint32_t c = 0; c < cells.size(); ++c) {
    const std::uint32_t r = cells[c].example_row;
    PackedKey gkey;
    WideKey skey;
    std::size_t k = 0;
    for (const auto& ref : key_refs) {
      const std::uint64_t w = key_ref_word(ref, r);
      gkey.w[k] = w;
      skey.w[k] = w;
      ++k;
    }
    for (const auto& ref : extra_refs) skey.w[k++] = key_ref_word(ref, r);
    const auto [git, ginserted] =
        group_index.emplace(gkey, static_cast<std::uint32_t>(out.group_example_row.size()));
    if (ginserted) {
      out.group_example_row.push_back(r);
      out.groups.emplace_back();
    }
    const auto [sit, sinserted] =
        sub_index.emplace(skey, static_cast<std::uint32_t>(subs.size()));
    if (sinserted) {
      subs.emplace_back();
      out.groups[git->second].push_back(sit->second);
    }
    subs[sit->second].cells.push_back(c);
  }

  // Pass 3: materialize one TuplePartial per sub-tuple, day cells ascending.
  out.tuples.resize(subs.size());
  for (std::size_t s = 0; s < subs.size(); ++s) {
    std::vector<std::uint32_t>& cs = subs[s].cells;
    std::sort(cs.begin(), cs.end(), [&cells](std::uint32_t a, std::uint32_t b) {
      return cells[a].day < cells[b].day;  // days are unique within a sub
    });
    TuplePartial& t = out.tuples[s];
    const std::uint32_t r0 = cells[cs.front()].example_row;
    t.group.reserve(nkeys);
    for (const auto& k : group_by) t.group.push_back(make_key_value(table.col(k), r0));
    t.extra.reserve(nextra);
    for (const auto& name : extra_names) t.extra.push_back(make_key_value(table.col(name), r0));
    t.rank = rank_vals != nullptr ? cells[cs.front()].rank : static_cast<std::int64_t>(s);
    t.days.reserve(cs.size());
    t.states.reserve(cs.size() * naggs);
    for (const std::uint32_t c : cs) {
      if (rank_vals != nullptr) t.rank = std::min(t.rank, cells[c].rank);
      t.days.push_back(cells[c].day);
      t.states.insert(t.states.end(), cell_states.begin() + std::size_t{c} * naggs,
                      cell_states.begin() + (std::size_t{c} + 1) * naggs);
    }
  }
  return out;
}

std::vector<AggState> fold_groups(const Collected& c) {
  const std::size_t naggs = c.naggs;
  std::vector<AggState> sub_states(c.tuples.size() * naggs);
  for (std::size_t s = 0; s < c.tuples.size(); ++s) {
    const TuplePartial& t = c.tuples[s];
    TimeTreeFold fold(sub_states.data() + s * naggs, naggs);
    for (std::size_t i = 0; i < t.days.size(); ++i) {
      fold.add(t.days[i], t.states.data() + i * naggs);
    }
    fold.finish();
  }
  std::vector<AggState> states(c.groups.size() * naggs);
  for (std::size_t g = 0; g < c.groups.size(); ++g) {
    for (const std::uint32_t s : c.groups[g]) {
      merge_states(states.data() + g * naggs, sub_states.data() + std::size_t{s} * naggs, naggs);
    }
  }
  return states;
}

}  // namespace partial

Table Query::run() const {
  if (aggs_.empty()) throw common::InvalidArgument("query without aggregations");
  if (keys_.size() > kMaxGroupKeys) {
    throw common::InvalidArgument("query supports at most 4 group keys");
  }
  const std::size_t nrows = table_.rows();
  if (nrows > std::numeric_limits<std::uint32_t>::max()) {
    throw common::InvalidArgument("query: table exceeds 2^32 rows");
  }

  // Output schema: keys (typed like the source) then one double per agg
  // (count as int64).
  std::vector<std::pair<std::string, ColType>> schema;
  for (const auto& k : keys_) schema.emplace_back(k, table_.col(k).type());
  for (const auto& a : aggs_) {
    schema.emplace_back(a.as.empty() ? default_agg_name(a) : a.as,
                        a.kind == AggKind::kCount ? ColType::kInt64 : ColType::kDouble);
  }
  Table out(table_.name() + "_agg", std::move(schema));

  // --- plan: resolve every column reference once --------------------------
  std::vector<KeyRef> key_refs;
  key_refs.reserve(keys_.size());
  for (const auto& k : keys_) {
    const Column& c = table_.col(k);
    KeyRef ref;
    ref.type = c.type();
    switch (c.type()) {
      case ColType::kDouble:
        ref.f64 = c.doubles().data();
        break;
      case ColType::kInt64:
        ref.i64 = c.int64s().data();
        break;
      case ColType::kString:
        ref.codes = c.codes().data();
        break;
    }
    key_refs.push_back(ref);
  }

  std::vector<AggRef> agg_refs;
  agg_refs.reserve(aggs_.size());
  for (const auto& a : aggs_) {
    AggRef ref;
    ref.kind = a.kind;
    if (a.kind != AggKind::kCount) {
      ref.value = numeric_ref(table_.col(a.column));
      if (a.kind == AggKind::kWeightedMean) ref.weight = numeric_ref(table_.col(a.weight));
    }
    agg_refs.push_back(ref);
  }

  // Cancellation safe point: polled once per scan chunk and once per
  // aggregation segment (coarse enough to stay off the per-row hot path).
  // Throwing tears the run down through the pool's rethrow; stats_ is reset
  // below and only assigned on success, so no partial accounting escapes.
  const common::CancelToken* cancel = cancel_;
  const auto check_cancel = [cancel] {
    if (cancel != nullptr && cancel->stop_requested()) {
      throw common::Cancelled("query abandoned at safe point");
    }
  };

  // --- phase 1: per-chunk selection vectors (shared with run_partial) -----
  stats_ = QueryStats{};  // visible stats stay zeroed until the run completes
  ScanResult scan = scan_phase(table_, pred_, threads_, cancel_);
  QueryStats st = scan.st;
  const std::size_t total_matches = scan.total_matches;
  const std::uint32_t* match_ptr = scan.identity ? nullptr : scan.matches.data();

  // ISA tier pinned once per run. The AVX2 kernels gather through row
  // indices as signed 32-bit lanes, so a table past 2^31 rows takes the
  // scalar table — legal at any time because every tier is bit-identical.
  const kernels::KernelTable& kt = nrows > (std::size_t{1} << 31)
                                       ? kernels::table_for(common::simd::Tier::kScalar)
                                       : kernels::active();

  // --- phase 2 ------------------------------------------------------------
  const std::size_t naggs = aggs_.size();
  std::vector<std::size_t> group_example_row;  // first-seen group order
  std::vector<AggState> states;                // [group * naggs + agg]

  if (!table_.time_partition().empty()) {
    // Time-partitioned contract: sequential micro-cell accumulation + the
    // calendar tree fold (rollup-reproducible; see partial::collect).
    const partial::Collected collected =
        partial::collect(table_, keys_, aggs_, match_ptr, total_matches,
                         /*rank_column=*/std::string(), cancel_);
    group_example_row = collected.group_example_row;
    states = partial::fold_groups(collected);
  } else {
  // Canonical segment contract: partial aggregation over match-list segments.
  const std::size_t nsegs =
      total_matches == 0 ? 0 : (total_matches + kSegmentRows - 1) / kSegmentRows;

  // Dense fast path for the common report shape: every group key is a
  // dictionary code (validated non-negative, < dict size) and the combined
  // code domain is small, so group slots are addressed directly by combined
  // code — no per-row hashing. Slots still record first-seen order per
  // segment, so group order and the merge are unchanged.
  constexpr std::size_t kMaxDenseGroups = std::size_t{1} << 14;
  constexpr std::uint32_t kNoGroup = std::numeric_limits<std::uint32_t>::max();
  bool dense = !key_refs.empty();  // no keys → the vectorized ungrouped path
  std::size_t dense_domain = 1;
  std::array<std::size_t, kMaxGroupKeys> dense_mult{};
  for (std::size_t k = 0; k < key_refs.size(); ++k) {
    if (key_refs[k].type != ColType::kString) {
      dense = false;
      break;
    }
    dense_mult[k] = dense_domain;
    dense_domain *= table_.col(keys_[k]).dict().size();
    if (dense_domain > kMaxDenseGroups) {
      dense = false;
      break;
    }
  }

  std::vector<SegmentPartial> partials(nsegs);
  common::pool_run(nsegs, threads_, 0, [&](std::size_t seg) {
    check_cancel();
    SegmentPartial& part = partials[seg];
    const std::size_t begin = seg * kSegmentRows;
    const std::size_t end = std::min(total_matches, begin + kSegmentRows);
    const std::size_t len = end - begin;
    const std::uint32_t* rows = match_ptr != nullptr ? match_ptr + begin : nullptr;
    const auto base = static_cast<std::uint32_t>(begin);
    if (key_refs.empty()) {
      aggregate_ungrouped(part, agg_refs, kt, rows, base, len);
      return;
    }
    if (dense) {
      std::vector<std::uint32_t> slot(dense_domain, kNoGroup);
      for (std::size_t j = 0; j < len; ++j) {
        const std::uint32_t r = rows != nullptr ? rows[j] : base + static_cast<std::uint32_t>(j);
        std::size_t idx = 0;
        for (std::size_t k = 0; k < key_refs.size(); ++k) {
          idx += static_cast<std::size_t>(key_refs[k].codes[r]) * dense_mult[k];
        }
        std::uint32_t g = slot[idx];
        if (g == kNoGroup) {
          g = static_cast<std::uint32_t>(part.keys.size());
          slot[idx] = g;
          PackedKey key;
          for (std::size_t k = 0; k < key_refs.size(); ++k) {
            key.w[k] = static_cast<std::uint32_t>(key_refs[k].codes[r]);
          }
          part.keys.push_back(key);
          part.example_row.push_back(r);
          part.states.resize(part.states.size() + naggs);
        }
        update_aggs(agg_refs, part.states.data() + std::size_t{g} * naggs, r);
      }
      return;
    }
    radix_group_segment(part, key_refs, agg_refs, rows, base, len);
  });

  // --- merge partials in segment order (deterministic group order) --------
  check_cancel();
  std::unordered_map<PackedKey, std::size_t, PackedKeyHash> groups;
  for (const auto& part : partials) {
    for (std::size_t g = 0; g < part.keys.size(); ++g) {
      const auto [it, inserted] = groups.emplace(part.keys[g], group_example_row.size());
      if (inserted) {
        group_example_row.push_back(part.example_row[g]);
        states.resize(states.size() + naggs);
      }
      AggState* into = states.data() + it->second * naggs;
      const AggState* from = part.states.data() + g * naggs;
      for (std::size_t a = 0; a < naggs; ++a) merge_state(into[a], from[a]);
    }
  }
  }  // end canonical segment contract

  // --- emit group rows in first-seen order --------------------------------
  for (std::size_t g = 0; g < group_example_row.size(); ++g) {
    auto row = out.append();
    const std::size_t src = group_example_row[g];
    for (const auto& k : keys_) {
      const Column& c = table_.col(k);
      switch (c.type()) {
        case ColType::kString:
          row.set(k, c.as_string(src));
          break;
        case ColType::kInt64:
          row.set(k, c.as_int64(src));
          break;
        case ColType::kDouble:
          row.set(k, c.as_double(src));
          break;
      }
    }
    for (std::size_t a = 0; a < naggs; ++a) {
      const AggSpec& spec = aggs_[a];
      const AggState& s = states[g * naggs + a];
      const std::string name = spec.as.empty() ? default_agg_name(spec) : spec.as;
      switch (spec.kind) {
        case AggKind::kSum:
          row.set(name, canon_nan(s.sum));
          break;
        case AggKind::kMean:
          row.set(name, s.n > 0 ? canon_nan(s.sum / static_cast<double>(s.n)) : 0.0);
          break;
        case AggKind::kWeightedMean:
          row.set(name, s.wsum > 0.0 ? canon_nan(s.wvsum / s.wsum) : 0.0);
          break;
        case AggKind::kMax:
          row.set(name, s.n > 0 ? s.mx : 0.0);
          break;
        case AggKind::kMin:
          row.set(name, s.n > 0 ? s.mn : 0.0);
          break;
        case AggKind::kCount:
          row.set(name, s.n);
          break;
      }
    }
  }
  stats_ = st;
  return out;
}

partial::Partial Query::run_partial(const std::string& rank_column) const {
  if (aggs_.empty()) throw common::InvalidArgument("query without aggregations");
  if (keys_.size() > kMaxGroupKeys) {
    throw common::InvalidArgument("query supports at most 4 group keys");
  }
  stats_ = QueryStats{};
  ScanResult scan = scan_phase(table_, pred_, threads_, cancel_);
  partial::Collected col = partial::collect(
      table_, keys_, aggs_, scan.identity ? nullptr : scan.matches.data(),
      scan.total_matches, rank_column, cancel_);
  partial::Partial p;
  p.stats = scan.st;
  p.key_schema = std::move(col.key_schema);
  p.naggs = col.naggs;
  p.tuples = std::move(col.tuples);
  stats_ = p.stats;
  return p;
}

}  // namespace supremm::warehouse
