// Public partial-aggregate API for the time-partitioned query contract
// (DESIGN.md §16, §17) — the piece of the executor a federated warehouse
// has to ship across the wire.
//
// `Query::run` on a time-partitioned table works in three fixed stages:
// micro-cells keyed (group keys, partition subkeys, end-day) accumulate
// sequentially in match order; per (group, sub-tuple) the day cells fold
// through the calendar tree; sub-tuple totals merge into groups in
// first-seen order. The day-level cell states are the natural *partial*:
// they are complete for any row subset that never splits a (sub-tuple, day)
// cell, and the fold/merge stages are pure functions of them. This header
// extracts that boundary from the executor:
//
//   collect()          scan-side: match list → day-level tuple partials
//                      (Query::run itself is built on it, so the identity
//                      "merge of partials == single scan" holds by
//                      construction, not by luck)
//   fold_groups()      the engine's fold+merge stage over a Collected set
//   merge_partials()   coordinator-side: union shard partials, order
//                      tuples by rank, fold, and emit the same "_agg"
//                      table a single-warehouse scan would produce
//
// Determinism across shards: the engine emits groups (and sub-tuples within
// a group) in first-match order. On a table sorted ascending by a unique
// rank column (the jobs table is: publish_jobs/Archive::load keep it
// ascending by job id), first-match order IS ascending minimum rank, and
// the minimum rank of a tuple is the min over shards of per-shard minima —
// an order the coordinator can reconstruct exactly. Each tuple carries its
// cluster in the group keys or the extra subkeys, so a placement that
// shards by (cluster, day-range) never splits a (sub-tuple, day) cell, day
// lists from different shards are disjoint, and merged accumulators seeded
// at +0.0 reproduce the single-scan bits exactly (DESIGN.md §17 contract).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/cancel.h"
#include "warehouse/aggstate.h"
#include "warehouse/query.h"
#include "warehouse/table.h"

namespace supremm::warehouse::partial {

/// One group/subkey value, exact-bit typed: strings travel as strings
/// (dictionary codes are per-shard), doubles as raw bit patterns (NaN
/// payloads and -0.0 are distinct key values, same as the engine's packed
/// keys).
struct KeyValue {
  ColType type = ColType::kInt64;
  std::int64_t i64 = 0;       // kInt64
  std::uint64_t bits = 0;     // kDouble (std::bit_cast of the value)
  std::string str;            // kString

  bool operator==(const KeyValue&) const = default;
};

/// Day-level partial states of one (group tuple, partition sub-tuple):
/// everything the coordinator needs to finish the aggregation exactly.
struct TuplePartial {
  std::vector<KeyValue> group;  // group-key values, spec order
  std::vector<KeyValue> extra;  // partition subkeys not among the group keys
  /// Minimum rank-column value among the tuple's matching rows (collect with
  /// a rank column; the federation uses job_id). With no rank column this is
  /// the tuple's first-seen index — meaningful only within one collect().
  std::int64_t rank = 0;
  std::vector<std::int64_t> days;  // ascending day indices with matches
  std::vector<AggState> states;    // [day_idx * naggs + agg]
};

/// A serializable shard answer: per-tuple day partials plus this shard's
/// scan accounting. `key_schema` fixes the output key columns; every shard
/// of a federation must agree on it (same table schema).
struct Partial {
  QueryStats stats;
  std::vector<std::pair<std::string, ColType>> key_schema;
  std::size_t naggs = 0;
  std::vector<TuplePartial> tuples;
};

/// collect() output: the tuples plus the first-seen group structure the
/// engine's own emission path consumes.
struct Collected {
  std::vector<std::pair<std::string, ColType>> key_schema;
  std::size_t naggs = 0;
  std::vector<TuplePartial> tuples;                // first-seen sub-tuple order
  std::vector<std::vector<std::uint32_t>> groups;  // first-seen group → tuple idx
  std::vector<std::size_t> group_example_row;      // first matching row per group
};

/// Scan-side partial production over an ordered match list (pass 1+2 of the
/// §16 contract). `match_rows == nullptr` means rows [0, total_matches).
/// When `rank_column` is non-empty it must name an int64 column; each
/// tuple's rank is the minimum of that column over its matching rows.
/// Throws InvalidArgument when the table has no time partition or the
/// key + subkey tuple exceeds the 8-word cell key. Polls `cancel` at
/// segment granularity (throws common::Cancelled).
[[nodiscard]] Collected collect(const Table& table,
                                const std::vector<std::string>& group_by,
                                const std::vector<AggSpec>& aggs,
                                const std::uint32_t* match_rows,
                                std::size_t total_matches,
                                const std::string& rank_column,
                                const common::CancelToken* cancel);

/// The engine's fold stage: per tuple, tree-fold its day cells in ascending
/// day order; then merge tuple totals into their group, in the tuple order
/// `c.groups` lists. Output is group-major: [group * naggs + agg].
[[nodiscard]] std::vector<AggState> fold_groups(const Collected& c);

/// Coordinator-side merge: union tuples across shards by exact key values
/// (day lists merge; a day present in two partials — a placement that split
/// a cell — left-folds in `parts` order, deterministically), order tuples
/// and groups by ascending rank, fold, and emit the "_agg" result table.
/// `stats`, when non-null, receives the field-wise sum of the shard stats.
/// Throws InvalidArgument on empty input or mismatched key schemas / agg
/// counts between shards.
[[nodiscard]] Table merge_partials(std::span<const Partial> parts,
                                   const std::vector<AggSpec>& aggs,
                                   const std::string& out_name,
                                   QueryStats* stats = nullptr);

}  // namespace supremm::warehouse::partial
