#include "warehouse/kernels.h"

#include <bit>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SUPREMM_SIMD_X86 1
#endif

namespace supremm::warehouse::kernels {

namespace {

// --- scalar tier -----------------------------------------------------------

std::size_t filter_f64_range_scalar(const double* v, std::uint32_t begin, std::uint32_t end,
                                    double lo, double hi, std::uint32_t* out) {
  std::size_t cnt = 0;
  for (std::uint32_t r = begin; r < end; ++r) {
    const double x = v[r];
    if (x >= lo && x <= hi) out[cnt++] = r;
  }
  return cnt;
}

std::size_t filter_codes_eq_scalar(const std::int32_t* codes, std::uint32_t begin,
                                   std::uint32_t end, std::int32_t code, std::uint32_t* out) {
  std::size_t cnt = 0;
  for (std::uint32_t r = begin; r < end; ++r) {
    if (codes[r] == code) out[cnt++] = r;
  }
  return cnt;
}

std::size_t refine_f64_range_scalar(const double* v, const std::uint32_t* sel, std::size_t n,
                                    double lo, double hi, std::uint32_t* out) {
  std::size_t cnt = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t r = sel[j];
    const double x = v[r];
    if (x >= lo && x <= hi) out[cnt++] = r;
  }
  return cnt;
}

std::size_t refine_codes_eq_scalar(const std::int32_t* codes, const std::uint32_t* sel,
                                   std::size_t n, std::int32_t code, std::uint32_t* out) {
  std::size_t cnt = 0;
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t r = sel[j];
    if (codes[r] == code) out[cnt++] = r;
  }
  return cnt;
}

// 8 scalar accumulators — the reference arithmetic every vector tier must
// reproduce bit-for-bit (same lane, same operation, same order).
void sum_lanes_scalar(const double* v, const std::uint32_t* rows, std::uint32_t base,
                      std::size_t n, double* lanes) {
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t r = rows != nullptr ? rows[j] : base + static_cast<std::uint32_t>(j);
    lanes[j % kLanes] += v[r];
  }
}

void min_lanes_scalar(const double* v, const std::uint32_t* rows, std::uint32_t base,
                      std::size_t n, double* lanes) {
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t r = rows != nullptr ? rows[j] : base + static_cast<std::uint32_t>(j);
    const double x = v[r];
    double& lane = lanes[j % kLanes];
    lane = x < lane ? x : lane;
  }
}

void max_lanes_scalar(const double* v, const std::uint32_t* rows, std::uint32_t base,
                      std::size_t n, double* lanes) {
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t r = rows != nullptr ? rows[j] : base + static_cast<std::uint32_t>(j);
    const double x = v[r];
    double& lane = lanes[j % kLanes];
    lane = x > lane ? x : lane;
  }
}

void dot_lanes_scalar(const double* v, const double* w, const std::uint32_t* rows,
                      std::uint32_t base, std::size_t n, double* wlanes, double* wvlanes) {
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t r = rows != nullptr ? rows[j] : base + static_cast<std::uint32_t>(j);
    const double wx = w[r];
    const double t = wx * v[r];
    wlanes[j % kLanes] += wx;
    wvlanes[j % kLanes] += t;
  }
}

constexpr KernelTable kScalarTable = {
    filter_f64_range_scalar, filter_codes_eq_scalar, refine_f64_range_scalar,
    refine_codes_eq_scalar,  sum_lanes_scalar,       min_lanes_scalar,
    max_lanes_scalar,        dot_lanes_scalar,
};

#ifdef SUPREMM_SIMD_X86

// --- SSE2 tier -------------------------------------------------------------

std::size_t filter_f64_range_sse2(const double* v, std::uint32_t begin, std::uint32_t end,
                                  double lo, double hi, std::uint32_t* out) {
  const __m128d vlo = _mm_set1_pd(lo), vhi = _mm_set1_pd(hi);
  std::size_t cnt = 0;
  std::uint32_t r = begin;
  for (; r + 2 <= end; r += 2) {
    const __m128d x = _mm_loadu_pd(v + r);
    const int mask =
        _mm_movemask_pd(_mm_and_pd(_mm_cmpge_pd(x, vlo), _mm_cmple_pd(x, vhi)));
    if (mask & 1) out[cnt++] = r;
    if (mask & 2) out[cnt++] = r + 1;
  }
  for (; r < end; ++r) {
    const double x = v[r];
    if (x >= lo && x <= hi) out[cnt++] = r;
  }
  return cnt;
}

std::size_t filter_codes_eq_sse2(const std::int32_t* codes, std::uint32_t begin,
                                 std::uint32_t end, std::int32_t code, std::uint32_t* out) {
  const __m128i vcode = _mm_set1_epi32(code);
  std::size_t cnt = 0;
  std::uint32_t r = begin;
  for (; r + 4 <= end; r += 4) {
    const __m128i x = _mm_loadu_si128(reinterpret_cast<const __m128i*>(codes + r));
    unsigned mask =
        static_cast<unsigned>(_mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(x, vcode))));
    while (mask != 0) {
      const unsigned k = static_cast<unsigned>(std::countr_zero(mask));
      out[cnt++] = r + k;
      mask &= mask - 1;
    }
  }
  for (; r < end; ++r) {
    if (codes[r] == code) out[cnt++] = r;
  }
  return cnt;
}

void sum_lanes_sse2(const double* v, const std::uint32_t* rows, std::uint32_t base,
                    std::size_t n, double* lanes) {
  if (rows != nullptr) {  // no SSE2 gather; the scalar loop is the same bits
    sum_lanes_scalar(v, rows, base, n, lanes);
    return;
  }
  __m128d acc[4];
  for (int k = 0; k < 4; ++k) acc[k] = _mm_loadu_pd(lanes + 2 * k);
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const double* p = v + base + j;
    for (int k = 0; k < 4; ++k) acc[k] = _mm_add_pd(acc[k], _mm_loadu_pd(p + 2 * k));
  }
  for (int k = 0; k < 4; ++k) _mm_storeu_pd(lanes + 2 * k, acc[k]);
  for (; j < n; ++j) lanes[j % kLanes] += v[base + j];
}

void min_lanes_sse2(const double* v, const std::uint32_t* rows, std::uint32_t base,
                    std::size_t n, double* lanes) {
  if (rows != nullptr) {
    min_lanes_scalar(v, rows, base, n, lanes);
    return;
  }
  __m128d acc[4];
  for (int k = 0; k < 4; ++k) acc[k] = _mm_loadu_pd(lanes + 2 * k);
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const double* p = v + base + j;
    for (int k = 0; k < 4; ++k) acc[k] = _mm_min_pd(_mm_loadu_pd(p + 2 * k), acc[k]);
  }
  for (int k = 0; k < 4; ++k) _mm_storeu_pd(lanes + 2 * k, acc[k]);
  for (; j < n; ++j) {
    const double x = v[base + j];
    double& lane = lanes[j % kLanes];
    lane = x < lane ? x : lane;
  }
}

void max_lanes_sse2(const double* v, const std::uint32_t* rows, std::uint32_t base,
                    std::size_t n, double* lanes) {
  if (rows != nullptr) {
    max_lanes_scalar(v, rows, base, n, lanes);
    return;
  }
  __m128d acc[4];
  for (int k = 0; k < 4; ++k) acc[k] = _mm_loadu_pd(lanes + 2 * k);
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    const double* p = v + base + j;
    for (int k = 0; k < 4; ++k) acc[k] = _mm_max_pd(_mm_loadu_pd(p + 2 * k), acc[k]);
  }
  for (int k = 0; k < 4; ++k) _mm_storeu_pd(lanes + 2 * k, acc[k]);
  for (; j < n; ++j) {
    const double x = v[base + j];
    double& lane = lanes[j % kLanes];
    lane = x > lane ? x : lane;
  }
}

constexpr KernelTable kSse2Table = {
    filter_f64_range_sse2, filter_codes_eq_sse2, refine_f64_range_scalar,
    refine_codes_eq_scalar, sum_lanes_sse2,      min_lanes_sse2,
    max_lanes_sse2,         dot_lanes_scalar,
};

// --- AVX2 tier -------------------------------------------------------------
//
// Compiled with a function-level target attribute so the rest of the build
// keeps its baseline flags; these bodies only execute after cpuid says AVX2.
// The gather intrinsics expand through an undefined destination register,
// which GCC's -Wmaybe-uninitialized flags spuriously (GCC PR 105593).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

__attribute__((target("avx2"))) std::size_t filter_f64_range_avx2(
    const double* v, std::uint32_t begin, std::uint32_t end, double lo, double hi,
    std::uint32_t* out) {
  const __m256d vlo = _mm256_set1_pd(lo), vhi = _mm256_set1_pd(hi);
  std::size_t cnt = 0;
  std::uint32_t r = begin;
  for (; r + 4 <= end; r += 4) {
    const __m256d x = _mm256_loadu_pd(v + r);
    const __m256d ok = _mm256_and_pd(_mm256_cmp_pd(x, vlo, _CMP_GE_OQ),
                                     _mm256_cmp_pd(x, vhi, _CMP_LE_OQ));
    unsigned mask = static_cast<unsigned>(_mm256_movemask_pd(ok));
    while (mask != 0) {
      out[cnt++] = r + static_cast<unsigned>(std::countr_zero(mask));
      mask &= mask - 1;
    }
  }
  for (; r < end; ++r) {
    const double x = v[r];
    if (x >= lo && x <= hi) out[cnt++] = r;
  }
  return cnt;
}

__attribute__((target("avx2"))) std::size_t filter_codes_eq_avx2(
    const std::int32_t* codes, std::uint32_t begin, std::uint32_t end, std::int32_t code,
    std::uint32_t* out) {
  const __m256i vcode = _mm256_set1_epi32(code);
  std::size_t cnt = 0;
  std::uint32_t r = begin;
  for (; r + 8 <= end; r += 8) {
    const __m256i x = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(codes + r));
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(x, vcode))));
    while (mask != 0) {
      out[cnt++] = r + static_cast<unsigned>(std::countr_zero(mask));
      mask &= mask - 1;
    }
  }
  for (; r < end; ++r) {
    if (codes[r] == code) out[cnt++] = r;
  }
  return cnt;
}

__attribute__((target("avx2"))) std::size_t refine_f64_range_avx2(
    const double* v, const std::uint32_t* sel, std::size_t n, double lo, double hi,
    std::uint32_t* out) {
  const __m256d vlo = _mm256_set1_pd(lo), vhi = _mm256_set1_pd(hi);
  std::size_t cnt = 0;
  std::size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(sel + j));
    const __m256d x = _mm256_i32gather_pd(v, idx, 8);
    const __m256d ok = _mm256_and_pd(_mm256_cmp_pd(x, vlo, _CMP_GE_OQ),
                                     _mm256_cmp_pd(x, vhi, _CMP_LE_OQ));
    unsigned mask = static_cast<unsigned>(_mm256_movemask_pd(ok));
    while (mask != 0) {
      out[cnt++] = sel[j + static_cast<unsigned>(std::countr_zero(mask))];
      mask &= mask - 1;
    }
  }
  for (; j < n; ++j) {
    const std::uint32_t r = sel[j];
    const double x = v[r];
    if (x >= lo && x <= hi) out[cnt++] = r;
  }
  return cnt;
}

__attribute__((target("avx2"))) std::size_t refine_codes_eq_avx2(
    const std::int32_t* codes, const std::uint32_t* sel, std::size_t n, std::int32_t code,
    std::uint32_t* out) {
  const __m256i vcode = _mm256_set1_epi32(code);
  std::size_t cnt = 0;
  std::size_t j = 0;
  for (; j + 8 <= n; j += 8) {
    const __m256i idx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(sel + j));
    const __m256i x = _mm256_i32gather_epi32(codes, idx, 4);
    unsigned mask = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(x, vcode))));
    while (mask != 0) {
      out[cnt++] = sel[j + static_cast<unsigned>(std::countr_zero(mask))];
      mask &= mask - 1;
    }
  }
  for (; j < n; ++j) {
    const std::uint32_t r = sel[j];
    if (codes[r] == code) out[cnt++] = r;
  }
  return cnt;
}

__attribute__((target("avx2"))) void sum_lanes_avx2(const double* v, const std::uint32_t* rows,
                                                    std::uint32_t base, std::size_t n,
                                                    double* lanes) {
  __m256d acc0 = _mm256_loadu_pd(lanes), acc1 = _mm256_loadu_pd(lanes + 4);
  std::size_t j = 0;
  if (rows != nullptr) {
    for (; j + kLanes <= n; j += kLanes) {
      const __m128i i0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + j));
      const __m128i i1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + j + 4));
      acc0 = _mm256_add_pd(acc0, _mm256_i32gather_pd(v, i0, 8));
      acc1 = _mm256_add_pd(acc1, _mm256_i32gather_pd(v, i1, 8));
    }
  } else {
    for (; j + kLanes <= n; j += kLanes) {
      const double* p = v + base + j;
      acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(p));
      acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(p + 4));
    }
  }
  _mm256_storeu_pd(lanes, acc0);
  _mm256_storeu_pd(lanes + 4, acc1);
  for (; j < n; ++j) {
    const std::uint32_t r = rows != nullptr ? rows[j] : base + static_cast<std::uint32_t>(j);
    lanes[j % kLanes] += v[r];
  }
}

__attribute__((target("avx2"))) void min_lanes_avx2(const double* v, const std::uint32_t* rows,
                                                    std::uint32_t base, std::size_t n,
                                                    double* lanes) {
  __m256d acc0 = _mm256_loadu_pd(lanes), acc1 = _mm256_loadu_pd(lanes + 4);
  std::size_t j = 0;
  if (rows != nullptr) {
    for (; j + kLanes <= n; j += kLanes) {
      const __m128i i0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + j));
      const __m128i i1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + j + 4));
      acc0 = _mm256_min_pd(_mm256_i32gather_pd(v, i0, 8), acc0);
      acc1 = _mm256_min_pd(_mm256_i32gather_pd(v, i1, 8), acc1);
    }
  } else {
    for (; j + kLanes <= n; j += kLanes) {
      const double* p = v + base + j;
      acc0 = _mm256_min_pd(_mm256_loadu_pd(p), acc0);
      acc1 = _mm256_min_pd(_mm256_loadu_pd(p + 4), acc1);
    }
  }
  _mm256_storeu_pd(lanes, acc0);
  _mm256_storeu_pd(lanes + 4, acc1);
  for (; j < n; ++j) {
    const std::uint32_t r = rows != nullptr ? rows[j] : base + static_cast<std::uint32_t>(j);
    const double x = v[r];
    double& lane = lanes[j % kLanes];
    lane = x < lane ? x : lane;
  }
}

__attribute__((target("avx2"))) void max_lanes_avx2(const double* v, const std::uint32_t* rows,
                                                    std::uint32_t base, std::size_t n,
                                                    double* lanes) {
  __m256d acc0 = _mm256_loadu_pd(lanes), acc1 = _mm256_loadu_pd(lanes + 4);
  std::size_t j = 0;
  if (rows != nullptr) {
    for (; j + kLanes <= n; j += kLanes) {
      const __m128i i0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + j));
      const __m128i i1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + j + 4));
      acc0 = _mm256_max_pd(_mm256_i32gather_pd(v, i0, 8), acc0);
      acc1 = _mm256_max_pd(_mm256_i32gather_pd(v, i1, 8), acc1);
    }
  } else {
    for (; j + kLanes <= n; j += kLanes) {
      const double* p = v + base + j;
      acc0 = _mm256_max_pd(_mm256_loadu_pd(p), acc0);
      acc1 = _mm256_max_pd(_mm256_loadu_pd(p + 4), acc1);
    }
  }
  _mm256_storeu_pd(lanes, acc0);
  _mm256_storeu_pd(lanes + 4, acc1);
  for (; j < n; ++j) {
    const std::uint32_t r = rows != nullptr ? rows[j] : base + static_cast<std::uint32_t>(j);
    const double x = v[r];
    double& lane = lanes[j % kLanes];
    lane = x > lane ? x : lane;
  }
}

__attribute__((target("avx2"))) void dot_lanes_avx2(const double* v, const double* w,
                                                    const std::uint32_t* rows,
                                                    std::uint32_t base, std::size_t n,
                                                    double* wlanes, double* wvlanes) {
  __m256d wacc0 = _mm256_loadu_pd(wlanes), wacc1 = _mm256_loadu_pd(wlanes + 4);
  __m256d wvacc0 = _mm256_loadu_pd(wvlanes), wvacc1 = _mm256_loadu_pd(wvlanes + 4);
  std::size_t j = 0;
  for (; j + kLanes <= n; j += kLanes) {
    __m256d v0, v1, w0, w1;
    if (rows != nullptr) {
      const __m128i i0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + j));
      const __m128i i1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rows + j + 4));
      v0 = _mm256_i32gather_pd(v, i0, 8);
      v1 = _mm256_i32gather_pd(v, i1, 8);
      w0 = _mm256_i32gather_pd(w, i0, 8);
      w1 = _mm256_i32gather_pd(w, i1, 8);
    } else {
      const double* pv = v + base + j;
      const double* pw = w + base + j;
      v0 = _mm256_loadu_pd(pv);
      v1 = _mm256_loadu_pd(pv + 4);
      w0 = _mm256_loadu_pd(pw);
      w1 = _mm256_loadu_pd(pw + 4);
    }
    wacc0 = _mm256_add_pd(wacc0, w0);
    wacc1 = _mm256_add_pd(wacc1, w1);
    // mul then add, never FMA: matches the scalar tier's two roundings.
    wvacc0 = _mm256_add_pd(wvacc0, _mm256_mul_pd(w0, v0));
    wvacc1 = _mm256_add_pd(wvacc1, _mm256_mul_pd(w1, v1));
  }
  _mm256_storeu_pd(wlanes, wacc0);
  _mm256_storeu_pd(wlanes + 4, wacc1);
  _mm256_storeu_pd(wvlanes, wvacc0);
  _mm256_storeu_pd(wvlanes + 4, wvacc1);
  for (; j < n; ++j) {
    const std::uint32_t r = rows != nullptr ? rows[j] : base + static_cast<std::uint32_t>(j);
    const double wx = w[r];
    const double t = wx * v[r];
    wlanes[j % kLanes] += wx;
    wvlanes[j % kLanes] += t;
  }
}

#pragma GCC diagnostic pop

constexpr KernelTable kAvx2Table = {
    filter_f64_range_avx2, filter_codes_eq_avx2, refine_f64_range_avx2,
    refine_codes_eq_avx2,  sum_lanes_avx2,       min_lanes_avx2,
    max_lanes_avx2,        dot_lanes_avx2,
};

#endif  // SUPREMM_SIMD_X86

}  // namespace

const KernelTable& table_for(common::simd::Tier t) noexcept {
#ifdef SUPREMM_SIMD_X86
  switch (t) {
    case common::simd::Tier::kAvx2:
      return kAvx2Table;
    case common::simd::Tier::kSse2:
      return kSse2Table;
    case common::simd::Tier::kScalar:
      break;
  }
#else
  (void)t;
#endif
  return kScalarTable;
}

const KernelTable& active() noexcept { return table_for(common::simd::active_tier()); }

void sum_lanes_i64(const std::int64_t* v, const std::uint32_t* rows, std::uint32_t base,
                   std::size_t n, double* lanes) {
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t r = rows != nullptr ? rows[j] : base + static_cast<std::uint32_t>(j);
    lanes[j % kLanes] += static_cast<double>(v[r]);
  }
}

void min_lanes_i64(const std::int64_t* v, const std::uint32_t* rows, std::uint32_t base,
                   std::size_t n, double* lanes) {
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t r = rows != nullptr ? rows[j] : base + static_cast<std::uint32_t>(j);
    const double x = static_cast<double>(v[r]);
    double& lane = lanes[j % kLanes];
    lane = x < lane ? x : lane;
  }
}

void max_lanes_i64(const std::int64_t* v, const std::uint32_t* rows, std::uint32_t base,
                   std::size_t n, double* lanes) {
  for (std::size_t j = 0; j < n; ++j) {
    const std::uint32_t r = rows != nullptr ? rows[j] : base + static_cast<std::uint32_t>(j);
    const double x = static_cast<double>(v[r]);
    double& lane = lanes[j % kLanes];
    lane = x > lane ? x : lane;
  }
}

}  // namespace supremm::warehouse::kernels
