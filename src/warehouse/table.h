// In-memory columnar data warehouse.
//
// Stands in for the paper's IBM Netezza / MySQL warehouse: typed columns,
// predicate filtering, and grouped aggregation - the query shapes every
// XDMoD report in §4 reduces to. String columns are dictionary encoded.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

namespace supremm::warehouse {

enum class ColType : std::uint8_t { kDouble, kInt64, kString };

/// One typed column. Strings are stored as codes into a per-column dictionary.
class Column {
 public:
  Column(std::string name, ColType type);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] ColType type() const noexcept { return type_; }
  [[nodiscard]] std::size_t size() const noexcept;

  void push_double(double v);
  void push_int64(std::int64_t v);
  void push_string(std::string_view v);

  // Bulk loaders for decoded archive chunks: append whole spans without the
  // per-value type branch, and install a prebuilt dictionary so string chunks
  // land as raw codes instead of re-hashing every value.
  void append_doubles(std::span<const double> vals);
  void append_int64s(std::span<const std::int64_t> vals);
  /// Append dictionary codes (string columns only). Every code must index
  /// into the installed dictionary.
  void append_codes(std::span<const std::int32_t> vals);
  /// Install the dictionary wholesale (string columns only; the column must
  /// not hold rows yet). Entries must be unique.
  void set_dict(std::vector<std::string> entries);

  [[nodiscard]] double as_double(std::size_t row) const;
  [[nodiscard]] std::int64_t as_int64(std::size_t row) const;
  [[nodiscard]] std::string_view as_string(std::size_t row) const;

  [[nodiscard]] std::span<const double> doubles() const;
  [[nodiscard]] std::span<const std::int64_t> int64s() const;
  /// Dictionary code of row (string columns only).
  [[nodiscard]] std::int32_t code(std::size_t row) const;
  /// All dictionary codes in row order (string columns only). The typed
  /// query kernels and the archive codec iterate this span instead of
  /// calling code(row) per row.
  [[nodiscard]] std::span<const std::int32_t> codes() const;
  [[nodiscard]] std::string_view decode(std::int32_t code) const;
  /// Dictionary code for `v`, or nullopt if the value never occurs in the
  /// column (string columns only). O(1); used for zone-map pruning of
  /// equality predicates without scanning rows.
  [[nodiscard]] std::optional<std::int32_t> find_code(std::string_view v) const;
  /// The dictionary in code order (string columns only).
  [[nodiscard]] std::span<const std::string> dict() const;

 private:
  std::string name_;
  ColType type_;
  std::vector<double> f64_;
  std::vector<std::int64_t> i64_;
  std::vector<std::int32_t> codes_;
  std::vector<std::string> dict_;
  std::unordered_map<std::string, std::int32_t> dict_index_;
};

/// Per-chunk min/max/null-count summaries over a table, so queries and the
/// archive reader can skip whole chunks whose value range cannot satisfy a
/// predicate (classic zone maps / block-range index). String columns are
/// summarised by their dictionary-code range, which supports pruning
/// equality predicates once the literal is resolved to a code.
struct ZoneIndex {
  struct Range {
    double lo = 0.0;
    double hi = 0.0;
    std::uint32_t nulls = 0;  // NaN doubles in the chunk
  };

  std::size_t chunk_rows = 0;
  std::size_t chunks = 0;
  std::vector<std::vector<Range>> ranges;  // [column][chunk]
};

/// A named collection of equally sized columns.
class Table {
 public:
  Table(std::string name, std::vector<std::pair<std::string, ColType>> schema);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return columns_.size(); }

  [[nodiscard]] const Column& col(std::string_view name) const;
  [[nodiscard]] Column& col(std::string_view name);
  [[nodiscard]] bool has_col(std::string_view name) const noexcept;
  [[nodiscard]] const std::vector<Column>& columns() const noexcept { return columns_; }

  /// Append one row; values must be pushed for every column via the builder.
  class RowBuilder {
   public:
    RowBuilder& set(std::string_view col, double v);
    RowBuilder& set(std::string_view col, std::int64_t v);
    RowBuilder& set(std::string_view col, std::string_view v);
    ~RowBuilder() noexcept(false);
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    friend class Table;
    explicit RowBuilder(Table& t);
    Table& table_;
    std::vector<bool> filled_;
  };
  [[nodiscard]] RowBuilder append() { return RowBuilder(*this); }

  /// Adopt rows pushed directly into the columns (bulk loaders, e.g. the
  /// archive reader, bypass RowBuilder). Throws if columns are ragged.
  void finalize_rows();

  /// (Re)build the zone index over the current rows. Call after the table is
  /// fully loaded and ordered; any later append invalidates it (and drops it).
  void rebuild_zone_index(std::size_t chunk_rows = 1024);
  [[nodiscard]] const ZoneIndex* zone_index() const noexcept {
    return zone_ ? &*zone_ : nullptr;
  }

  /// Append a fully-populated int64 column (one value per existing row).
  /// Drops the zone index; rebuild it afterwards if pruning is wanted.
  void add_int64_column(std::string name, std::vector<std::int64_t> values);

  /// Declare this table time-partitioned on `column` (an int64 timestamp)
  /// with the given partition subkey columns. Query::run() and the testkit
  /// oracle switch to the time-partitioned aggregation contract
  /// (DESIGN.md §16): per-(key tuple, subkey tuple, day) micro-cells
  /// accumulate sequentially in match order and fold day → week → month →
  /// quarter, with cross-dimension merges outermost — so answers are
  /// reproducible from materialized rollups at any bucket level.
  void set_time_partition(std::string column, std::vector<std::string> subkeys);
  /// Time-partition column name; empty when the table is not partitioned.
  [[nodiscard]] const std::string& time_partition() const noexcept { return tp_column_; }
  [[nodiscard]] const std::vector<std::string>& time_partition_subkeys() const noexcept {
    return tp_subkeys_;
  }

  /// Rows passing `pred(row_index)`.
  template <typename Pred>
  [[nodiscard]] std::vector<std::size_t> select(Pred pred) const {
    std::vector<std::size_t> out;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (pred(r)) out.push_back(r);
    }
    return out;
  }

 private:
  std::string name_;
  std::vector<Column> columns_;
  std::size_t rows_ = 0;
  std::optional<ZoneIndex> zone_;
  std::string tp_column_;
  std::vector<std::string> tp_subkeys_;
};

}  // namespace supremm::warehouse
