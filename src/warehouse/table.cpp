#include "warehouse/table.h"

#include <algorithm>

#include "common/error.h"

namespace supremm::warehouse {

Column::Column(std::string name, ColType type) : name_(std::move(name)), type_(type) {}

std::size_t Column::size() const noexcept {
  switch (type_) {
    case ColType::kDouble:
      return f64_.size();
    case ColType::kInt64:
      return i64_.size();
    case ColType::kString:
      return codes_.size();
  }
  return 0;
}

void Column::push_double(double v) {
  if (type_ != ColType::kDouble) throw common::InvalidArgument("column " + name_ + " not double");
  f64_.push_back(v);
}

void Column::push_int64(std::int64_t v) {
  if (type_ != ColType::kInt64) throw common::InvalidArgument("column " + name_ + " not int64");
  i64_.push_back(v);
}

void Column::push_string(std::string_view v) {
  if (type_ != ColType::kString) throw common::InvalidArgument("column " + name_ + " not string");
  const auto it = dict_index_.find(std::string(v));
  std::int32_t code = 0;
  if (it == dict_index_.end()) {
    code = static_cast<std::int32_t>(dict_.size());
    dict_.emplace_back(v);
    dict_index_.emplace(std::string(v), code);
  } else {
    code = it->second;
  }
  codes_.push_back(code);
}

void Column::append_doubles(std::span<const double> vals) {
  if (type_ != ColType::kDouble) throw common::InvalidArgument("column " + name_ + " not double");
  f64_.insert(f64_.end(), vals.begin(), vals.end());
}

void Column::append_int64s(std::span<const std::int64_t> vals) {
  if (type_ != ColType::kInt64) throw common::InvalidArgument("column " + name_ + " not int64");
  i64_.insert(i64_.end(), vals.begin(), vals.end());
}

void Column::append_codes(std::span<const std::int32_t> vals) {
  if (type_ != ColType::kString) throw common::InvalidArgument("column " + name_ + " not string");
  for (const std::int32_t c : vals) {
    if (c < 0 || static_cast<std::size_t>(c) >= dict_.size()) {
      throw common::InvalidArgument("column " + name_ + ": code outside dictionary");
    }
  }
  codes_.insert(codes_.end(), vals.begin(), vals.end());
}

void Column::set_dict(std::vector<std::string> entries) {
  if (type_ != ColType::kString) throw common::InvalidArgument("column " + name_ + " not string");
  if (!codes_.empty() || !dict_.empty()) {
    throw common::InvalidArgument("column " + name_ + ": set_dict on a non-empty column");
  }
  dict_ = std::move(entries);
  dict_index_.reserve(dict_.size());
  for (std::size_t i = 0; i < dict_.size(); ++i) {
    if (!dict_index_.emplace(dict_[i], static_cast<std::int32_t>(i)).second) {
      throw common::InvalidArgument("column " + name_ + ": duplicate dictionary entry");
    }
  }
}

double Column::as_double(std::size_t row) const {
  if (type_ == ColType::kDouble) return f64_.at(row);
  if (type_ == ColType::kInt64) return static_cast<double>(i64_.at(row));
  throw common::InvalidArgument("column " + name_ + " is not numeric");
}

std::int64_t Column::as_int64(std::size_t row) const {
  if (type_ != ColType::kInt64) throw common::InvalidArgument("column " + name_ + " not int64");
  return i64_.at(row);
}

std::string_view Column::as_string(std::size_t row) const {
  if (type_ != ColType::kString) throw common::InvalidArgument("column " + name_ + " not string");
  return dict_.at(static_cast<std::size_t>(codes_.at(row)));
}

std::span<const double> Column::doubles() const {
  if (type_ != ColType::kDouble) throw common::InvalidArgument("column " + name_ + " not double");
  return f64_;
}

std::span<const std::int64_t> Column::int64s() const {
  if (type_ != ColType::kInt64) throw common::InvalidArgument("column " + name_ + " not int64");
  return i64_;
}

std::optional<std::int32_t> Column::find_code(std::string_view v) const {
  if (type_ != ColType::kString) throw common::InvalidArgument("column " + name_ + " not string");
  const auto it = dict_index_.find(std::string(v));
  if (it == dict_index_.end()) return std::nullopt;
  return it->second;
}

std::span<const std::string> Column::dict() const {
  if (type_ != ColType::kString) throw common::InvalidArgument("column " + name_ + " not string");
  return dict_;
}

std::int32_t Column::code(std::size_t row) const {
  if (type_ != ColType::kString) throw common::InvalidArgument("column " + name_ + " not string");
  return codes_.at(row);
}

std::span<const std::int32_t> Column::codes() const {
  if (type_ != ColType::kString) throw common::InvalidArgument("column " + name_ + " not string");
  return codes_;
}

std::string_view Column::decode(std::int32_t code) const {
  return dict_.at(static_cast<std::size_t>(code));
}

Table::Table(std::string name, std::vector<std::pair<std::string, ColType>> schema)
    : name_(std::move(name)) {
  if (schema.empty()) throw common::InvalidArgument("table needs >= 1 column");
  columns_.reserve(schema.size());
  for (auto& [n, t] : schema) columns_.emplace_back(std::move(n), t);
}

const Column& Table::col(std::string_view name) const {
  for (const auto& c : columns_) {
    if (c.name() == name) return c;
  }
  throw common::NotFoundError("column '" + std::string(name) + "' in table " + name_);
}

Column& Table::col(std::string_view name) {
  return const_cast<Column&>(static_cast<const Table*>(this)->col(name));
}

bool Table::has_col(std::string_view name) const noexcept {
  for (const auto& c : columns_) {
    if (c.name() == name) return true;
  }
  return false;
}

Table::RowBuilder::RowBuilder(Table& t) : table_(t), filled_(t.columns_.size(), false) {}

namespace {
std::size_t col_index(Table& t, std::string_view name) {
  const auto& cols = t.columns();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    if (cols[i].name() == name) return i;
  }
  throw common::NotFoundError("column '" + std::string(name) + "'");
}
}  // namespace

Table::RowBuilder& Table::RowBuilder::set(std::string_view col, double v) {
  const std::size_t i = col_index(table_, col);
  table_.columns_[i].push_double(v);
  filled_[i] = true;
  return *this;
}

Table::RowBuilder& Table::RowBuilder::set(std::string_view col, std::int64_t v) {
  const std::size_t i = col_index(table_, col);
  table_.columns_[i].push_int64(v);
  filled_[i] = true;
  return *this;
}

Table::RowBuilder& Table::RowBuilder::set(std::string_view col, std::string_view v) {
  const std::size_t i = col_index(table_, col);
  table_.columns_[i].push_string(v);
  filled_[i] = true;
  return *this;
}

Table::RowBuilder::~RowBuilder() noexcept(false) {
  for (std::size_t i = 0; i < filled_.size(); ++i) {
    if (!filled_[i]) {
      throw common::InvalidArgument("row missing column '" + table_.columns_[i].name() + "'");
    }
  }
  ++table_.rows_;
  table_.zone_.reset();  // new row invalidates chunk summaries
}

void Table::finalize_rows() {
  const std::size_t n = columns_.front().size();
  for (const auto& c : columns_) {
    if (c.size() != n) {
      throw common::InvalidArgument("table " + name_ + ": ragged column '" + c.name() + "' (" +
                                    std::to_string(c.size()) + " vs " + std::to_string(n) + ")");
    }
  }
  rows_ = n;
  zone_.reset();
}

void Table::add_int64_column(std::string name, std::vector<std::int64_t> values) {
  if (values.size() != rows_) {
    throw common::InvalidArgument("table " + name_ + ": add_int64_column '" + name + "' has " +
                                  std::to_string(values.size()) + " values for " +
                                  std::to_string(rows_) + " rows");
  }
  if (has_col(name)) {
    throw common::InvalidArgument("table " + name_ + ": column '" + name + "' already exists");
  }
  Column c(std::move(name), ColType::kInt64);
  c.append_int64s(values);
  columns_.push_back(std::move(c));
  zone_.reset();  // column set changed: chunk summaries are per-column
}

void Table::set_time_partition(std::string column, std::vector<std::string> subkeys) {
  if (!column.empty()) {
    const Column& c = col(column);
    if (c.type() != ColType::kInt64) {
      throw common::InvalidArgument("time partition column '" + column + "' must be int64");
    }
    for (const auto& s : subkeys) (void)col(s);  // must exist
  }
  tp_column_ = std::move(column);
  tp_subkeys_ = std::move(subkeys);
}

void Table::rebuild_zone_index(std::size_t chunk_rows) {
  if (chunk_rows == 0) throw common::InvalidArgument("zone index needs chunk_rows >= 1");
  ZoneIndex zi;
  zi.chunk_rows = chunk_rows;
  zi.chunks = (rows_ + chunk_rows - 1) / chunk_rows;
  zi.ranges.resize(columns_.size());
  for (std::size_t ci = 0; ci < columns_.size(); ++ci) {
    const Column& c = columns_[ci];
    auto& col_ranges = zi.ranges[ci];
    col_ranges.resize(zi.chunks);
    for (std::size_t ch = 0; ch < zi.chunks; ++ch) {
      const std::size_t lo_row = ch * chunk_rows;
      const std::size_t hi_row = std::min(rows_, lo_row + chunk_rows);
      ZoneIndex::Range range;
      bool seen = false;
      for (std::size_t r = lo_row; r < hi_row; ++r) {
        double v = 0.0;
        switch (c.type()) {
          case ColType::kDouble:
            v = c.as_double(r);
            break;
          case ColType::kInt64:
            v = static_cast<double>(c.as_int64(r));
            break;
          case ColType::kString:
            v = static_cast<double>(c.code(r));
            break;
        }
        if (v != v) {  // NaN: excluded from the range, counted as null
          ++range.nulls;
          continue;
        }
        if (!seen || v < range.lo) range.lo = v;
        if (!seen || v > range.hi) range.hi = v;
        seen = true;
      }
      col_ranges[ch] = range;
    }
  }
  zone_ = std::move(zi);
}

}  // namespace supremm::warehouse
