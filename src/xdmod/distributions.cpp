#include "xdmod/distributions.h"

#include <cmath>

#include "common/error.h"

namespace supremm::xdmod {

DistributionReport flops_distribution(const etl::SystemSeries& series,
                                      std::size_t grid_points) {
  DistributionReport r;
  r.name = "cpu_flops";
  r.unit = "TF";
  const auto& xs = series.flops_tf;
  if (xs.empty()) throw common::InvalidArgument("empty flops series");
  r.density = stats::kde(xs, grid_points);
  r.summary = stats::summarize(xs);
  return r;
}

DistributionReport memory_distribution(std::span<const etl::JobSummary> jobs, bool use_max,
                                       std::size_t grid_points) {
  DistributionReport r;
  r.name = use_max ? "mem_used_max" : "mem_used";
  r.unit = "GB";
  std::vector<double> xs;
  std::vector<double> ws;
  for (const auto& j : jobs) {
    xs.push_back(use_max ? j.mem_used_max_gb : j.mem_used_gb);
    ws.push_back(j.node_hours);
  }
  if (xs.empty()) throw common::InvalidArgument("no jobs for memory distribution");
  r.density = stats::kde_weighted(xs, ws, grid_points);
  stats::Accumulator acc;
  for (const double x : xs) acc.add(x);
  r.summary = acc.summary();
  return r;
}

DistributionReport job_metric_distribution(std::span<const etl::JobSummary> jobs,
                                           const std::string& metric,
                                           std::size_t grid_points) {
  DistributionReport r;
  r.name = metric;
  std::vector<double> xs;
  std::vector<double> ws;
  for (const auto& j : jobs) {
    const double v = etl::metric_value(j, metric);
    if (std::isnan(v)) continue;
    xs.push_back(v);
    ws.push_back(j.node_hours);
  }
  if (xs.empty()) throw common::InvalidArgument("no finite values for metric " + metric);
  r.density = stats::kde_weighted(xs, ws, grid_points);
  r.summary = stats::summarize(xs);
  return r;
}

}  // namespace supremm::xdmod
