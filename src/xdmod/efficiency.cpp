#include "xdmod/efficiency.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "stats/descriptive.h"

namespace supremm::xdmod {

std::vector<UserEfficiency> user_efficiency(std::span<const etl::JobSummary> jobs) {
  std::map<std::string, UserEfficiency> by_user;
  for (const auto& j : jobs) {
    UserEfficiency& u = by_user[j.user];
    u.user = j.user;
    u.node_hours += j.node_hours;
    u.wasted_node_hours += j.node_hours * j.cpu_idle;
    ++u.jobs;
  }
  std::vector<UserEfficiency> out;
  out.reserve(by_user.size());
  for (auto& [name, u] : by_user) out.push_back(std::move(u));
  std::sort(out.begin(), out.end(), [](const UserEfficiency& a, const UserEfficiency& b) {
    return a.node_hours != b.node_hours ? a.node_hours > b.node_hours : a.user < b.user;
  });
  return out;
}

double facility_efficiency(std::span<const etl::JobSummary> jobs) {
  double total = 0.0;
  double wasted = 0.0;
  for (const auto& j : jobs) {
    total += j.node_hours;
    wasted += j.node_hours * j.cpu_idle;
  }
  return total > 0.0 ? 1.0 - wasted / total : 0.0;
}

std::vector<UserEfficiency> inefficient_heavy_users(std::span<const etl::JobSummary> jobs,
                                                    double min_node_hours,
                                                    double max_efficiency) {
  std::vector<UserEfficiency> out;
  for (auto& u : user_efficiency(jobs)) {
    if (u.node_hours >= min_node_hours && u.efficiency() < max_efficiency) {
      out.push_back(std::move(u));
    }
  }
  std::sort(out.begin(), out.end(), [](const UserEfficiency& a, const UserEfficiency& b) {
    return a.efficiency() < b.efficiency();
  });
  return out;
}

std::vector<JobAnomaly> anomalous_jobs(std::span<const etl::JobSummary> jobs,
                                       double z_threshold) {
  // Per (app, metric) weighted mean and deviation.
  struct Key {
    std::string app;
    std::string metric;
    bool operator<(const Key& o) const {
      return app != o.app ? app < o.app : metric < o.metric;
    }
  };
  std::map<Key, stats::WeightedAccumulator> accs;
  for (const auto& j : jobs) {
    if (j.app.empty()) continue;
    for (const auto& m : etl::key_metric_names()) {
      const double v = etl::metric_value(j, m);
      if (!std::isnan(v)) accs[{j.app, m}].add(v, j.node_hours);
    }
  }
  std::vector<JobAnomaly> out;
  for (const auto& j : jobs) {
    if (j.app.empty()) continue;
    for (const auto& m : etl::key_metric_names()) {
      const double v = etl::metric_value(j, m);
      if (std::isnan(v)) continue;
      const auto& acc = accs.at({j.app, m});
      const double sd = acc.stddev();
      if (sd <= 0.0 || acc.count() < 8) continue;
      const double z = (v - acc.mean()) / sd;
      if (std::fabs(z) >= z_threshold) {
        out.push_back({j.id, j.user, j.app, m, v, acc.mean(), z});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const JobAnomaly& a, const JobAnomaly& b) {
    return std::fabs(a.zscore) > std::fabs(b.zscore);
  });
  return out;
}

std::vector<FailureProfile> failure_profiles(std::span<const etl::JobSummary> jobs) {
  std::map<std::string, FailureProfile> by_app;
  for (const auto& j : jobs) {
    const std::string app = j.app.empty() ? "(unknown)" : j.app;
    FailureProfile& f = by_app[app];
    f.app = app;
    ++f.jobs;
    f.node_hours += j.node_hours;
    if (j.exit_status != 0) ++f.failed;
    if (j.failed != 0) ++f.system_killed;
  }
  std::vector<FailureProfile> out;
  out.reserve(by_app.size());
  for (auto& [name, f] : by_app) out.push_back(std::move(f));
  std::sort(out.begin(), out.end(), [](const FailureProfile& a, const FailureProfile& b) {
    return a.failure_rate() > b.failure_rate();
  });
  return out;
}

}  // namespace supremm::xdmod
