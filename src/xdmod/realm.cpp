#include "xdmod/realm.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/strings.h"

namespace supremm::xdmod {

namespace {

using warehouse::AggKind;
using warehouse::AggSpec;
using warehouse::ColType;
using warehouse::Table;

/// Realm dimension name -> backing column.
std::string dimension_column(std::string_view dim) {
  if (dim == "user") return "user";
  if (dim == "application") return "app";
  if (dim == "science") return "science";
  if (dim == "project") return "project";
  if (dim == "cluster") return "cluster";
  if (dim == "none") return "all";
  throw common::NotFoundError("realm dimension '" + std::string(dim) + "'");
}

/// Statistic name -> aggregation over the realm table.
AggSpec statistic_agg(const std::string& stat) {
  if (stat == "job_count") return {"", AggKind::kCount, "", stat};
  if (stat == "total_node_hours") return {"node_hours", AggKind::kSum, "", stat};
  if (stat == "wasted_node_hours") return {"wasted_node_hours", AggKind::kSum, "", stat};
  if (stat == "failure_rate") return {"failed01", AggKind::kMean, "", stat};
  if (stat == "avg_job_size_nodes") return {"nodes", AggKind::kMean, "", stat};
  if (stat == "avg_wait_hours") return {"wait_hours", AggKind::kMean, "", stat};
  if (common::starts_with(stat, "avg_")) {
    const std::string metric = stat.substr(4);
    const auto& names = etl::all_metric_names();
    if (std::find(names.begin(), names.end(), metric) != names.end()) {
      return {metric, AggKind::kWeightedMean, "node_hours", stat};
    }
  }
  if (common::starts_with(stat, "max_")) {
    const std::string metric = stat.substr(4);
    const auto& names = etl::all_metric_names();
    if (std::find(names.begin(), names.end(), metric) != names.end()) {
      return {metric, AggKind::kMax, "", stat};
    }
  }
  throw common::NotFoundError("realm statistic '" + std::string(stat) + "'");
}

}  // namespace

JobsRealm::JobsRealm(std::span<const etl::JobSummary> jobs)
    : table_("jobs_realm", [] {
        std::vector<std::pair<std::string, ColType>> schema = {
            {"all", ColType::kString},     {"user", ColType::kString},
            {"app", ColType::kString},     {"science", ColType::kString},
            {"project", ColType::kString}, {"cluster", ColType::kString},
            {"nodes", ColType::kInt64},    {"node_hours", ColType::kDouble},
            {"wasted_node_hours", ColType::kDouble},
            {"failed01", ColType::kDouble}, {"wait_hours", ColType::kDouble},
        };
        for (const auto& m : etl::all_metric_names()) schema.emplace_back(m, ColType::kDouble);
        return schema;
      }()) {
  for (const auto& j : jobs) {
    auto row = table_.append();
    row.set("all", "all")
        .set("user", j.user)
        .set("app", j.app.empty() ? "(unknown)" : j.app)
        .set("science", j.science.empty() ? "(unknown)" : j.science)
        .set("project", j.project)
        .set("cluster", j.cluster)
        .set("nodes", static_cast<std::int64_t>(j.nodes))
        .set("node_hours", j.node_hours)
        .set("wasted_node_hours", j.node_hours * j.cpu_idle)
        .set("failed01", (j.exit_status != 0 || j.failed != 0) ? 1.0 : 0.0)
        .set("wait_hours", common::to_hours(j.start - j.submit));
    for (const auto& m : etl::all_metric_names()) {
      const double v = etl::metric_value(j, m);
      row.set(m, std::isnan(v) ? 0.0 : v);
    }
  }
}

std::vector<std::string> JobsRealm::dimensions() {
  return {"none", "user", "application", "science", "project", "cluster"};
}

std::vector<std::string> JobsRealm::statistics() {
  std::vector<std::string> out = {"job_count",       "total_node_hours",
                                  "wasted_node_hours", "failure_rate",
                                  "avg_job_size_nodes", "avg_wait_hours"};
  for (const auto& m : etl::all_metric_names()) {
    out.push_back("avg_" + m);
    out.push_back("max_" + m);
  }
  return out;
}

bool JobsRealm::has_dimension(std::string_view name) {
  const auto dims = dimensions();
  return std::find(dims.begin(), dims.end(), name) != dims.end();
}

bool JobsRealm::has_statistic(std::string_view name) {
  try {
    (void)statistic_agg(std::string(name));
    return true;
  } catch (const common::NotFoundError&) {
    return false;
  }
}

Table JobsRealm::report(const ReportSpec& spec) const {
  if (spec.statistics.empty()) {
    throw common::InvalidArgument("realm report needs >= 1 statistic");
  }
  const std::string key = dimension_column(spec.dimension);
  std::vector<AggSpec> aggs;
  aggs.reserve(spec.statistics.size());
  for (const auto& s : spec.statistics) aggs.push_back(statistic_agg(s));

  warehouse::Query q(table_);
  if (!spec.filter_dimension.empty()) {
    q.where(warehouse::eq(dimension_column(spec.filter_dimension), spec.filter_value));
  }
  Table grouped = q.group_by({key}).aggregate(std::move(aggs)).threads(spec.threads).run();

  // Optional sort + limit: rebuild in order (the warehouse emits group order).
  std::vector<std::size_t> order(grouped.rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (!spec.sort_by.empty()) {
    const auto& col = grouped.col(spec.sort_by);
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return col.as_double(a) > col.as_double(b);
    });
  }
  if (spec.limit > 0 && order.size() > spec.limit) order.resize(spec.limit);
  if (spec.sort_by.empty() && spec.limit == 0) return grouped;

  std::vector<std::pair<std::string, ColType>> schema;
  for (const auto& c : grouped.columns()) schema.emplace_back(c.name(), c.type());
  Table out(grouped.name(), std::move(schema));
  for (const std::size_t r : order) {
    auto row = out.append();
    for (const auto& c : grouped.columns()) {
      switch (c.type()) {
        case ColType::kString:
          row.set(c.name(), c.as_string(r));
          break;
        case ColType::kInt64:
          row.set(c.name(), c.as_int64(r));
          break;
        case ColType::kDouble:
          row.set(c.name(), c.as_double(r));
          break;
      }
    }
  }
  return out;
}

common::AsciiTable JobsRealm::render(const ReportSpec& spec) const {
  const Table t = report(spec);
  common::AsciiTable out(common::strprintf("Custom report: %s by %s",
                                           common::join(spec.statistics, ", ").c_str(),
                                           spec.dimension.c_str()));
  std::vector<std::string> head;
  head.reserve(t.cols());
  for (const auto& c : t.columns()) head.push_back(c.name());
  out.header(std::move(head));
  for (std::size_t r = 0; r < t.rows(); ++r) {
    auto row = out.add_row();
    for (const auto& c : t.columns()) {
      switch (c.type()) {
        case ColType::kString:
          row.cell(std::string(c.as_string(r)));
          break;
        case ColType::kInt64:
          row.cell(c.as_int64(r));
          break;
        case ColType::kDouble:
          row.cell(c.as_double(r), "%.4g");
          break;
      }
    }
  }
  return out;
}

}  // namespace supremm::xdmod
