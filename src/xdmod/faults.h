// Fault/failure diagnostics: linking resource-usage anomalies and log
// events with job failures.
//
// The paper points to the companion ANCOR tool [26] ("combines TACC_Stats
// data with rationalized logs to generate analyses and reports which
// diagnose the possible causes of system faults and failures") without
// detailing it; this module implements the core statistic such a linkage
// needs: for every rationalized log code, the failure rate of jobs that
// emitted it versus the baseline failure rate - the *lift* of the code as a
// failure predictor - plus the co-occurrence of failures with anomalous
// metric values.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "etl/job_summary.h"
#include "loglib/loglib.h"

namespace supremm::xdmod {

/// How strongly a log code predicts job failure.
struct CodeLift {
  std::string code;
  std::size_t jobs_with_code = 0;    // distinct ingested jobs emitting it
  std::size_t failed_with_code = 0;  // of those, how many failed
  double failure_rate = 0.0;         // failed_with_code / jobs_with_code
  double baseline_rate = 0.0;        // failure rate over all jobs
  /// failure_rate / baseline_rate; > 1 means the code predicts failure.
  double lift = 0.0;
};

/// Compute per-code failure lift from job summaries and rationalized log
/// records. Codes seen on no ingested job are omitted; informational
/// scheduler codes (JOB_START/JOB_EXIT) are excluded since every job emits
/// them. Sorted by lift, highest first.
[[nodiscard]] std::vector<CodeLift> failure_lift(
    std::span<const etl::JobSummary> jobs,
    std::span<const loglib::RationalizedRecord> records);

/// Metric-anomaly <-> failure linkage: among jobs in the top `tail_fraction`
/// of a metric (node-hour weighted), the failure rate vs baseline.
struct MetricTailRisk {
  std::string metric;
  double threshold = 0.0;      // metric value at the tail boundary
  std::size_t tail_jobs = 0;
  double failure_rate = 0.0;
  double baseline_rate = 0.0;
  double lift = 0.0;
};

[[nodiscard]] std::vector<MetricTailRisk> metric_tail_risk(
    std::span<const etl::JobSummary> jobs, double tail_fraction = 0.05);

}  // namespace supremm::xdmod
