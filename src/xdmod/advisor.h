// Complement-aware queue advisor (the paper's §4.3.4 future direction:
// "jobs could be selected from the queue to complement the present resource
// usage e.g. add high I/O jobs when I/O is relatively free").
//
// Candidate jobs are scored by how well their predicted profile fills the
// currently under-used dimensions: score = sum over metrics of
// predicted_norm[m] * (1 - current_norm[m]); metrics the facility is already
// saturating contribute nothing, idle dimensions contribute fully.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "etl/job_summary.h"
#include "etl/system_series.h"
#include "xdmod/profiles.h"

namespace supremm::xdmod {

/// A queued job with its predicted (normalized) usage profile.
struct QueueCandidate {
  facility::JobId id = 0;
  std::string user;
  std::string app;
  std::map<std::string, double> predicted_norm;  // metric -> normalized level
};

/// Current facility usage normalized to [0, 1] per metric (1 = the busiest
/// level observed over the series).
[[nodiscard]] std::map<std::string, double> current_usage_norm(
    const etl::SystemSeries& series, std::size_t bucket_index,
    const std::vector<std::string>& metrics);

/// Predict a candidate profile for (user, app) from history: the app profile
/// when the app is known, else the user profile, normalized by facility
/// means (ProfileAnalyzer semantics).
[[nodiscard]] QueueCandidate predict_candidate(const ProfileAnalyzer& analyzer,
                                               facility::JobId id, const std::string& user,
                                               const std::string& app);

struct RankedCandidate {
  QueueCandidate candidate;
  double score = 0.0;
};

/// Rank candidates by complementarity against the current usage, best first.
[[nodiscard]] std::vector<RankedCandidate> rank_candidates(
    const std::map<std::string, double>& current_norm,
    std::span<const QueueCandidate> candidates);

}  // namespace supremm::xdmod
