// Stakeholder report catalogue and renderers - the terminal stand-in for the
// XDMoD web interface. §4.3 defines six stakeholder classes, each with a set
// of preprogrammed reports; ReportBook builds them all from one DataContext.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "common/ascii_table.h"
#include "etl/job_summary.h"
#include "etl/quality.h"
#include "etl/system_series.h"
#include "xdmod/distributions.h"
#include "xdmod/efficiency.h"
#include "xdmod/persistence.h"
#include "xdmod/profiles.h"
#include "xdmod/timeseries.h"

namespace supremm::xdmod {

enum class Stakeholder : std::uint8_t {
  kUser,
  kApplicationDeveloper,
  kSupportStaff,
  kSystemsAdministrator,
  kResourceManager,
  kFundingAgency,
};
inline constexpr std::size_t kStakeholderCount = 6;

[[nodiscard]] std::string_view stakeholder_name(Stakeholder s) noexcept;

/// The preprogrammed report names for a stakeholder class (paper §4.3).
[[nodiscard]] std::vector<std::string> report_names(Stakeholder s);

// --- Renderers -------------------------------------------------------------

/// Radar-chart data as a table: metric, raw, normalized, bar.
[[nodiscard]] common::AsciiTable render_profile(const UsageProfile& p);

/// Several profiles side by side (Figure 3's app comparison).
[[nodiscard]] common::AsciiTable render_profile_comparison(
    std::span<const UsageProfile> profiles, const std::vector<std::string>& metrics);

/// Figure 4 as a table: top users, node-hours, wasted, efficiency, flag for
/// users under the efficiency line.
[[nodiscard]] common::AsciiTable render_efficiency(std::span<const UserEfficiency> users,
                                                   double facility_eff, std::size_t top_n);

/// Table 1.
[[nodiscard]] common::AsciiTable render_persistence(const PersistenceReport& r);

/// A KDE as a terminal-density plot (x, density, bar).
[[nodiscard]] common::AsciiTable render_distribution(const DistributionReport& d,
                                                     std::size_t rows = 24);

/// A time series as a table with bars.
[[nodiscard]] common::AsciiTable render_series(const SeriesReport& s, std::size_t max_rows = 40);

/// Anomalous jobs list.
[[nodiscard]] common::AsciiTable render_anomalies(std::span<const JobAnomaly> anomalies,
                                                  std::size_t top_n);

/// Failure profiles per application.
[[nodiscard]] common::AsciiTable render_failures(std::span<const FailureProfile> profiles);

/// Per-host data quality from salvage-mode ingest: the `top_n` worst-covered
/// hosts with their damage accounting, plus a facility totals row.
[[nodiscard]] common::AsciiTable render_data_quality(const etl::DataQualityReport& q,
                                                     std::size_t top_n = 20);

// --- The book --------------------------------------------------------------

/// Everything the report builders need.
struct DataContext {
  std::string cluster;
  /// Where the data came from ("live ingest", "archive <dir> ..."); printed
  /// as a "source:" line in every report book header when non-empty, so a
  /// report is traceable to the store that produced it.
  std::string provenance;
  std::span<const etl::JobSummary> jobs;
  const etl::SystemSeries* series = nullptr;
  std::size_t cores_per_node = 16;
  double node_mem_gb = 32.0;
  double peak_tflops = 0.0;
  /// Salvage-mode damage accounting; when set, the Systems Administrator
  /// book includes the data-quality report.
  const etl::DataQualityReport* quality = nullptr;
};

/// Build the full report set for one stakeholder, writing each rendered
/// report to `out`. Returns the number of reports emitted.
std::size_t write_reports(const DataContext& ctx, Stakeholder s, std::ostream& out);

}  // namespace supremm::xdmod
