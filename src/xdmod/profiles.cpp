#include "xdmod/profiles.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "stats/descriptive.h"

namespace supremm::xdmod {

std::string_view group_name(GroupBy g) noexcept {
  switch (g) {
    case GroupBy::kUser:
      return "user";
    case GroupBy::kApp:
      return "application";
    case GroupBy::kScience:
      return "science";
    case GroupBy::kProject:
      return "project";
  }
  return "unknown";
}

const std::string& entity_of(const etl::JobSummary& job, GroupBy g) noexcept {
  switch (g) {
    case GroupBy::kUser:
      return job.user;
    case GroupBy::kApp:
      return job.app;
    case GroupBy::kScience:
      return job.science;
    case GroupBy::kProject:
      return job.project;
  }
  return job.user;
}

const ProfileEntry& UsageProfile::entry(std::string_view metric) const {
  for (const auto& e : entries) {
    if (e.metric == metric) return e;
  }
  throw common::NotFoundError("profile entry '" + std::string(metric) + "'");
}

ProfileAnalyzer::ProfileAnalyzer(std::span<const etl::JobSummary> jobs,
                                 std::vector<std::string> metrics)
    : jobs_(jobs), metrics_(std::move(metrics)) {
  if (metrics_.empty()) metrics_ = etl::key_metric_names();
  for (const auto& m : metrics_) {
    stats::WeightedAccumulator acc;
    for (const auto& j : jobs_) {
      const double v = etl::metric_value(j, m);
      if (!std::isnan(v)) acc.add(v, j.node_hours);
    }
    facility_means_[m] = acc.mean();
  }
}

UsageProfile ProfileAnalyzer::profile(GroupBy g, const std::string& entity) const {
  UsageProfile p;
  p.entity = entity;
  std::map<std::string, stats::WeightedAccumulator> accs;
  for (const auto& j : jobs_) {
    if (entity_of(j, g) != entity) continue;
    ++p.jobs;
    p.node_hours += j.node_hours;
    for (const auto& m : metrics_) {
      const double v = etl::metric_value(j, m);
      if (!std::isnan(v)) accs[m].add(v, j.node_hours);
    }
  }
  for (const auto& m : metrics_) {
    ProfileEntry e;
    e.metric = m;
    e.raw = accs[m].mean();
    const double denom = facility_means_.at(m);
    e.normalized = denom > 0.0 ? e.raw / denom : 0.0;
    p.entries.push_back(std::move(e));
  }
  return p;
}

std::vector<std::string> ProfileAnalyzer::top_entities(GroupBy g, std::size_t n) const {
  std::map<std::string, double> hours;
  for (const auto& j : jobs_) {
    const std::string& e = entity_of(j, g);
    if (!e.empty()) hours[e] += j.node_hours;
  }
  std::vector<std::pair<std::string, double>> sorted(hours.begin(), hours.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  std::vector<std::string> out;
  for (std::size_t i = 0; i < sorted.size() && i < n; ++i) out.push_back(sorted[i].first);
  return out;
}

std::vector<UsageProfile> ProfileAnalyzer::top_profiles(GroupBy g, std::size_t n) const {
  std::vector<UsageProfile> out;
  for (const auto& e : top_entities(g, n)) out.push_back(profile(g, e));
  return out;
}

}  // namespace supremm::xdmod
