// Normalized usage profiles (Figures 2, 3, 5).
//
// Paper §4.3.1: "The profiles have been normalized by dividing by the
// average values for the particular metric calculated over all users.
// Therefore, a typical user would have a value of one for each of the 8
// metrics and this would appear as a perfect octagon... Values above one
// indicate heavy usage: below one, light usage." All means are node-hour
// weighted (§4.1); flops values of jobs with user-programmed counters are
// NaN and excluded from both numerator and denominator.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "etl/job_summary.h"

namespace supremm::xdmod {

enum class GroupBy { kUser, kApp, kScience, kProject };

[[nodiscard]] std::string_view group_name(GroupBy g) noexcept;

/// The grouping key of a job under `g`.
[[nodiscard]] const std::string& entity_of(const etl::JobSummary& job, GroupBy g) noexcept;

struct ProfileEntry {
  std::string metric;
  double raw = 0.0;         // node-hour weighted mean for the entity
  double normalized = 0.0;  // raw / facility-wide weighted mean
};

struct UsageProfile {
  std::string entity;
  double node_hours = 0.0;
  std::size_t jobs = 0;
  std::vector<ProfileEntry> entries;  // in key_metric order

  [[nodiscard]] const ProfileEntry& entry(std::string_view metric) const;
};

class ProfileAnalyzer {
 public:
  /// Uses the 8 key metrics by default; pass any subset of
  /// etl::all_metric_names() to customize.
  explicit ProfileAnalyzer(std::span<const etl::JobSummary> jobs,
                           std::vector<std::string> metrics = {});

  /// Facility-wide node-hour weighted mean of each metric.
  [[nodiscard]] const std::map<std::string, double>& facility_means() const noexcept {
    return facility_means_;
  }

  /// Profile of one entity (e.g. one user or application).
  [[nodiscard]] UsageProfile profile(GroupBy g, const std::string& entity) const;

  /// Entities with the most node-hours, descending.
  [[nodiscard]] std::vector<std::string> top_entities(GroupBy g, std::size_t n) const;

  /// Profiles of the top-n entities (the paper's "5 heavy users of Ranger").
  [[nodiscard]] std::vector<UsageProfile> top_profiles(GroupBy g, std::size_t n) const;

  [[nodiscard]] const std::vector<std::string>& metrics() const noexcept { return metrics_; }

 private:
  std::span<const etl::JobSummary> jobs_;
  std::vector<std::string> metrics_;
  std::map<std::string, double> facility_means_;
};

}  // namespace supremm::xdmod
