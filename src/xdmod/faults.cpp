#include "xdmod/faults.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/error.h"
#include "stats/descriptive.h"

namespace supremm::xdmod {

std::vector<CodeLift> failure_lift(std::span<const etl::JobSummary> jobs,
                                   std::span<const loglib::RationalizedRecord> records) {
  std::map<facility::JobId, bool> failed_by_id;
  for (const auto& j : jobs) failed_by_id[j.id] = j.exit_status != 0 || j.failed != 0;
  if (failed_by_id.empty()) return {};

  std::size_t baseline_failed = 0;
  for (const auto& [id, f] : failed_by_id) baseline_failed += f ? 1 : 0;
  const double baseline =
      static_cast<double>(baseline_failed) / static_cast<double>(failed_by_id.size());

  // Distinct jobs per code.
  std::map<std::string, std::set<facility::JobId>> jobs_by_code;
  for (const auto& r : records) {
    if (r.job_id == 0) continue;
    if (r.code == "JOB_START" || r.code == "JOB_EXIT") continue;
    if (failed_by_id.count(r.job_id) == 0) continue;  // job filtered at ingest
    jobs_by_code[r.code].insert(r.job_id);
  }

  std::vector<CodeLift> out;
  for (const auto& [code, ids] : jobs_by_code) {
    CodeLift c;
    c.code = code;
    c.jobs_with_code = ids.size();
    for (const auto id : ids) c.failed_with_code += failed_by_id.at(id) ? 1 : 0;
    c.failure_rate =
        static_cast<double>(c.failed_with_code) / static_cast<double>(c.jobs_with_code);
    c.baseline_rate = baseline;
    c.lift = baseline > 0.0 ? c.failure_rate / baseline : 0.0;
    out.push_back(std::move(c));
  }
  std::sort(out.begin(), out.end(), [](const CodeLift& a, const CodeLift& b) {
    return a.lift != b.lift ? a.lift > b.lift : a.code < b.code;
  });
  return out;
}

std::vector<MetricTailRisk> metric_tail_risk(std::span<const etl::JobSummary> jobs,
                                             double tail_fraction) {
  if (tail_fraction <= 0.0 || tail_fraction >= 1.0) {
    throw common::InvalidArgument("tail_fraction must be in (0,1)");
  }
  if (jobs.empty()) return {};
  std::size_t baseline_failed = 0;
  for (const auto& j : jobs) baseline_failed += (j.exit_status != 0 || j.failed != 0) ? 1 : 0;
  const double baseline =
      static_cast<double>(baseline_failed) / static_cast<double>(jobs.size());

  std::vector<MetricTailRisk> out;
  for (const auto& metric : etl::key_metric_names()) {
    std::vector<double> values;
    values.reserve(jobs.size());
    for (const auto& j : jobs) {
      const double v = etl::metric_value(j, metric);
      if (!std::isnan(v)) values.push_back(v);
    }
    if (values.size() < 20) continue;
    const double threshold = stats::quantile(values, 1.0 - tail_fraction);

    MetricTailRisk r;
    r.metric = metric;
    r.threshold = threshold;
    std::size_t failed = 0;
    for (const auto& j : jobs) {
      const double v = etl::metric_value(j, metric);
      if (std::isnan(v) || v < threshold) continue;
      ++r.tail_jobs;
      failed += (j.exit_status != 0 || j.failed != 0) ? 1 : 0;
    }
    if (r.tail_jobs == 0) continue;
    r.failure_rate = static_cast<double>(failed) / static_cast<double>(r.tail_jobs);
    r.baseline_rate = baseline;
    r.lift = baseline > 0.0 ? r.failure_rate / baseline : 0.0;
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(), [](const MetricTailRisk& a, const MetricTailRisk& b) {
    return a.lift > b.lift;
  });
  return out;
}

}  // namespace supremm::xdmod
