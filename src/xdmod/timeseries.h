// Time-series reports (Figures 7, 8, 9, 11): re-bucketing of the 10-minute
// facility series for display, plus the by-science memory report.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "common/time.h"
#include "etl/job_summary.h"
#include "etl/system_series.h"

namespace supremm::xdmod {

enum class SeriesAgg { kMean, kMax, kSum };

struct SeriesReport {
  std::string name;
  std::string unit;
  std::vector<common::TimePoint> t;  // bucket start times
  std::vector<double> v;

  [[nodiscard]] double max_value() const;
  [[nodiscard]] double mean_value() const;
};

/// Re-bucket a named facility series (e.g. "cpu_flops", "active_nodes") into
/// coarser display buckets.
[[nodiscard]] SeriesReport rebucket(const etl::SystemSeries& series,
                                    const std::string& metric, common::Duration width,
                                    SeriesAgg agg);

/// Figure 7b: CPU core-hours split user/idle/system per display bucket.
struct CpuHoursReport {
  std::vector<common::TimePoint> t;
  std::vector<double> user_core_h;
  std::vector<double> idle_core_h;
  std::vector<double> system_core_h;
};
[[nodiscard]] CpuHoursReport cpu_hours_report(const etl::SystemSeries& series,
                                              common::Duration width);

/// Figure 7c: Lustre traffic per filesystem per display bucket (MB/s).
struct LustreReport {
  std::vector<common::TimePoint> t;
  std::vector<double> scratch_mb_s;
  std::vector<double> work_mb_s;
  std::vector<double> share_mb_s;
};
[[nodiscard]] LustreReport lustre_report(const etl::SystemSeries& series,
                                         common::Duration width);

/// Figure 7a: average memory per core by parent science per display bucket.
/// Computed from job summaries: each job contributes its mem/core to every
/// bucket it overlaps, weighted by overlap node-hours.
struct ScienceMemoryReport {
  std::vector<std::string> sciences;
  std::vector<common::TimePoint> t;
  /// mem_gb_per_core[s][b] for science s, bucket b (0 when no jobs).
  std::vector<std::vector<double>> mem_gb_per_core;
};
[[nodiscard]] ScienceMemoryReport science_memory_report(
    std::span<const etl::JobSummary> jobs, std::size_t cores_per_node,
    common::TimePoint start, common::Duration span, common::Duration width);

}  // namespace supremm::xdmod
