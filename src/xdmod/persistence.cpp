#include "xdmod/persistence.h"

#include <cmath>

#include "common/error.h"

namespace supremm::xdmod {

const std::vector<std::string>& table1_metrics() {
  static const std::vector<std::string> kMetrics = {
      "cpu_flops", "mem_used", "io_scratch_write", "net_ib_tx", "cpu_idle"};
  return kMetrics;
}

const std::vector<double>& table1_offsets_minutes() {
  static const std::vector<double> kOffsets = {10, 30, 100, 500, 1000};
  return kOffsets;
}

PersistenceReport persistence_analysis(const etl::SystemSeries& series,
                                       const std::vector<std::string>& metrics,
                                       const std::vector<double>& offsets_minutes) {
  if (series.buckets == 0) throw common::InvalidArgument("empty system series");

  // Keep only buckets where the facility reported data.
  std::vector<std::size_t> keep;
  keep.reserve(series.buckets);
  for (std::size_t i = 0; i < series.buckets; ++i) {
    if (series.up_nodes[i] > 0.0) keep.push_back(i);
  }

  PersistenceReport out;
  out.metrics = metrics;
  out.offsets_minutes = offsets_minutes;

  const double bucket_minutes = common::to_minutes(series.bucket);
  std::vector<std::size_t> lags;
  for (const double off : offsets_minutes) {
    lags.push_back(static_cast<std::size_t>(std::lround(off / bucket_minutes)));
  }

  std::vector<double> all_offsets;
  std::vector<double> all_ratios;
  for (const auto& m : metrics) {
    const std::vector<double>& full = series.series(m);
    std::vector<double> xs;
    xs.reserve(keep.size());
    for (const std::size_t i : keep) xs.push_back(full[i]);

    std::vector<double> row;
    std::vector<double> fit_offsets;
    std::vector<double> fit_ratios;
    for (std::size_t o = 0; o < lags.size(); ++o) {
      double r = std::numeric_limits<double>::quiet_NaN();
      if (lags[o] > 0 && xs.size() > lags[o] + 1) {
        r = stats::offset_sd_ratio(xs, lags[o]);
      }
      row.push_back(r);
      if (!std::isnan(r)) {
        fit_offsets.push_back(offsets_minutes[o]);
        fit_ratios.push_back(r);
        all_offsets.push_back(offsets_minutes[o]);
        all_ratios.push_back(r);
      }
    }
    out.ratios.push_back(std::move(row));
    if (fit_offsets.size() >= 3) {
      out.fit_r2.push_back(stats::fit_persistence(fit_offsets, fit_ratios).fit.r2);
    } else {
      out.fit_r2.push_back(std::numeric_limits<double>::quiet_NaN());
    }
  }
  out.combined = stats::fit_persistence(all_offsets, all_ratios);
  return out;
}

PersistenceReport persistence_analysis(const etl::SystemSeries& series) {
  return persistence_analysis(series, table1_metrics(), table1_offsets_minutes());
}

}  // namespace supremm::xdmod
