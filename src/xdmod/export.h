// CSV export of analysis results - the "custom report" output path XDMoD
// offers alongside its charts. Every renderable structure has a CSV twin so
// downstream spreadsheets/notebooks can consume the data.
#pragma once

#include <ostream>
#include <span>

#include "etl/job_summary.h"
#include "etl/quality.h"
#include "xdmod/distributions.h"
#include "xdmod/efficiency.h"
#include "xdmod/persistence.h"
#include "xdmod/profiles.h"
#include "xdmod/timeseries.h"

namespace supremm::xdmod {

/// metric,raw,normalized rows for one profile.
void csv_profile(const UsageProfile& p, std::ostream& out);

/// metric,entityA,entityB,... matrix of normalized values.
void csv_profile_comparison(std::span<const UsageProfile> profiles,
                            const std::vector<std::string>& metrics, std::ostream& out);

/// user,node_hours,wasted_node_hours,efficiency rows.
void csv_efficiency(std::span<const UserEfficiency> users, std::ostream& out);

/// offset_minutes,<metric...> ratio matrix plus a fit_r2 row.
void csv_persistence(const PersistenceReport& r, std::ostream& out);

/// t,value rows.
void csv_series(const SeriesReport& s, std::ostream& out);

/// x,density rows.
void csv_distribution(const DistributionReport& d, std::ostream& out);

/// The full job table, one row per job, all metrics.
void csv_jobs(std::span<const etl::JobSummary> jobs, std::ostream& out);

/// Per-host salvage data-quality rows (coverage + damage accounting).
void csv_data_quality(const etl::DataQualityReport& q, std::ostream& out);

}  // namespace supremm::xdmod
