// Kernel-density distribution reports (Figures 10 and 12).
#pragma once

#include <span>
#include <string>

#include "etl/job_summary.h"
#include "etl/system_series.h"
#include "stats/descriptive.h"
#include "stats/kde.h"

namespace supremm::xdmod {

struct DistributionReport {
  std::string name;
  std::string unit;
  stats::Density density;
  stats::Summary summary;
};

/// Figure 10: distribution of facility FLOPS over time buckets. Shutdown
/// buckets contribute the small mode at zero the paper notes.
[[nodiscard]] DistributionReport flops_distribution(const etl::SystemSeries& series,
                                                    std::size_t grid_points = 256);

/// Figure 12: distribution of per-node memory used across jobs, node-hour
/// weighted; `use_max` selects the mem_used_max (red) curve.
[[nodiscard]] DistributionReport memory_distribution(std::span<const etl::JobSummary> jobs,
                                                     bool use_max,
                                                     std::size_t grid_points = 256);

/// Generic weighted distribution of any job metric.
[[nodiscard]] DistributionReport job_metric_distribution(
    std::span<const etl::JobSummary> jobs, const std::string& metric,
    std::size_t grid_points = 256);

}  // namespace supremm::xdmod
