#include "xdmod/selector.h"

#include <cmath>

#include "common/error.h"
#include "stats/descriptive.h"

namespace supremm::xdmod {

SelectionResult select_key_metrics(std::span<const etl::JobSummary> jobs, double threshold,
                                   std::vector<std::string> metrics) {
  if (metrics.empty()) metrics = etl::all_metric_names();

  // Build observation matrix, dropping jobs with NaN values.
  std::vector<std::vector<double>> series(metrics.size());
  for (const auto& j : jobs) {
    std::vector<double> row;
    row.reserve(metrics.size());
    bool ok = true;
    for (const auto& m : metrics) {
      const double v = etl::metric_value(j, m);
      if (std::isnan(v)) {
        ok = false;
        break;
      }
      row.push_back(v);
    }
    if (!ok) continue;
    for (std::size_t i = 0; i < metrics.size(); ++i) series[i].push_back(row[i]);
  }
  if (series.front().size() < 8) {
    throw common::InvalidArgument("too few complete jobs for correlation analysis");
  }

  SelectionResult out{metrics,
                      stats::CorrelationMatrix(metrics, series),
                      {},
                      {}};
  out.correlated_pairs = out.correlation.correlated_pairs(threshold);

  std::vector<double> priority;
  priority.reserve(metrics.size());
  for (const auto& s : series) priority.push_back(stats::summarize(s).cv());
  for (const std::size_t i :
       stats::select_independent(out.correlation, priority, threshold)) {
    out.selected.push_back(metrics[i]);
  }
  return out;
}

}  // namespace supremm::xdmod
