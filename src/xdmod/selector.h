// Correlation-based key-metric selection (§4.2).
//
// Reproduces the analysis that justified the paper's 8 key metrics: compute
// pairwise correlations of all job metrics over the job mix (node-hour
// weighted observations), report highly correlated/anti-correlated pairs
// (cpu_user vs cpu_idle, net_ib_rx vs net_ib_tx, ...) and greedily select a
// smallest independent set.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "etl/job_summary.h"
#include "stats/correlation.h"

namespace supremm::xdmod {

struct SelectionResult {
  std::vector<std::string> metrics;             // analyzed metrics, in order
  stats::CorrelationMatrix correlation;
  std::vector<stats::CorrelationMatrix::Pair> correlated_pairs;  // |r| >= threshold
  std::vector<std::string> selected;            // the independent set
};

/// Analyze `metrics` (default: etl::all_metric_names()) over the jobs. Jobs
/// with any NaN metric (invalid flops) are dropped from the observation set.
/// Metrics are prioritized for selection by coefficient of variation.
[[nodiscard]] SelectionResult select_key_metrics(std::span<const etl::JobSummary> jobs,
                                                 double threshold = 0.8,
                                                 std::vector<std::string> metrics = {});

}  // namespace supremm::xdmod
