#include "xdmod/export.h"

#include <cmath>

#include "common/csv.h"

namespace supremm::xdmod {

using common::CsvWriter;

void csv_profile(const UsageProfile& p, std::ostream& out) {
  CsvWriter w(out);
  w.row({"metric", "raw", "normalized"});
  for (const auto& e : p.entries) {
    w.field(e.metric).field(e.raw).field(e.normalized);
    w.end_row();
  }
}

void csv_profile_comparison(std::span<const UsageProfile> profiles,
                            const std::vector<std::string>& metrics, std::ostream& out) {
  CsvWriter w(out);
  w.field("metric");
  for (const auto& p : profiles) w.field(p.entity);
  w.end_row();
  for (const auto& m : metrics) {
    w.field(m);
    for (const auto& p : profiles) w.field(p.entry(m).normalized);
    w.end_row();
  }
}

void csv_efficiency(std::span<const UserEfficiency> users, std::ostream& out) {
  CsvWriter w(out);
  w.row({"user", "node_hours", "wasted_node_hours", "efficiency", "jobs"});
  for (const auto& u : users) {
    w.field(u.user)
        .field(u.node_hours)
        .field(u.wasted_node_hours)
        .field(u.efficiency())
        .field(static_cast<std::int64_t>(u.jobs));
    w.end_row();
  }
}

void csv_persistence(const PersistenceReport& r, std::ostream& out) {
  CsvWriter w(out);
  w.field("offset_minutes");
  for (const auto& m : r.metrics) w.field(m);
  w.end_row();
  for (std::size_t o = 0; o < r.offsets_minutes.size(); ++o) {
    w.field(r.offsets_minutes[o]);
    for (std::size_t m = 0; m < r.metrics.size(); ++m) {
      const double v = r.ratios[m][o];
      if (std::isnan(v)) {
        w.field("");
      } else {
        w.field(v);
      }
    }
    w.end_row();
  }
  w.field("fit_r2");
  for (const double r2 : r.fit_r2) {
    if (std::isnan(r2)) {
      w.field("");
    } else {
      w.field(r2);
    }
  }
  w.end_row();
}

void csv_series(const SeriesReport& s, std::ostream& out) {
  CsvWriter w(out);
  w.row({"t_seconds", s.name.empty() ? "value" : s.name});
  for (std::size_t i = 0; i < s.t.size(); ++i) {
    w.field(static_cast<std::int64_t>(s.t[i])).field(s.v[i]);
    w.end_row();
  }
}

void csv_distribution(const DistributionReport& d, std::ostream& out) {
  CsvWriter w(out);
  w.row({d.name, "density"});
  for (std::size_t i = 0; i < d.density.x.size(); ++i) {
    w.field(d.density.x[i]).field(d.density.y[i]);
    w.end_row();
  }
}

void csv_jobs(std::span<const etl::JobSummary> jobs, std::ostream& out) {
  CsvWriter w(out);
  std::vector<std::string> head = {"job_id", "user",  "app",   "science", "project",
                                   "cluster", "start", "end",   "nodes",   "cores",
                                   "node_hours", "exit_status"};
  for (const auto& m : etl::all_metric_names()) head.push_back(m);
  w.row(head);
  for (const auto& j : jobs) {
    w.field(static_cast<std::int64_t>(j.id))
        .field(j.user)
        .field(j.app)
        .field(j.science)
        .field(j.project)
        .field(j.cluster)
        .field(static_cast<std::int64_t>(j.start))
        .field(static_cast<std::int64_t>(j.end))
        .field(static_cast<std::int64_t>(j.nodes))
        .field(static_cast<std::int64_t>(j.cores))
        .field(j.node_hours)
        .field(static_cast<std::int64_t>(j.exit_status));
    for (const auto& m : etl::all_metric_names()) {
      const double v = etl::metric_value(j, m);
      if (std::isnan(v)) {
        w.field("");
      } else {
        w.field(v);
      }
    }
    w.end_row();
  }
}

void csv_data_quality(const etl::DataQualityReport& q, std::ostream& out) {
  CsvWriter w(out);
  w.row({"host", "files", "samples", "pairs", "quarantined", "duplicates", "reordered",
         "resets", "rollovers", "missing_job_end", "clock_skew_s", "covered_s", "coverage"});
  for (const auto& h : q.hosts) {
    w.field(h.host)
        .field(static_cast<std::int64_t>(h.files))
        .field(static_cast<std::int64_t>(h.samples))
        .field(static_cast<std::int64_t>(h.pairs))
        .field(static_cast<std::int64_t>(h.quarantined))
        .field(static_cast<std::int64_t>(h.duplicates_dropped))
        .field(static_cast<std::int64_t>(h.reordered))
        .field(static_cast<std::int64_t>(h.resets))
        .field(static_cast<std::int64_t>(h.rollovers))
        .field(static_cast<std::int64_t>(h.missing_job_end))
        .field(h.clock_skew_s)
        .field(h.covered_s)
        .field(h.coverage(q.span));
    w.end_row();
  }
}

}  // namespace supremm::xdmod
