// Persistence analysis over facility time series (Table 1 and Figure 6).
#pragma once

#include <string>
#include <vector>

#include "etl/system_series.h"
#include "stats/structure.h"

namespace supremm::xdmod {

/// The 5 metrics and offsets the paper's Table 1 reports.
[[nodiscard]] const std::vector<std::string>& table1_metrics();
[[nodiscard]] const std::vector<double>& table1_offsets_minutes();

struct PersistenceReport {
  std::vector<std::string> metrics;
  std::vector<double> offsets_minutes;
  /// ratios[m][o] = offset-sd ratio of metric m at offset o (NaN when the
  /// series is too short, rendered blank like the paper's table).
  std::vector<std::vector<double>> ratios;
  /// Per-metric log10 fit R^2 (Table 1's last row).
  std::vector<double> fit_r2;
  /// Combined fit over all metrics' (offset, ratio) points (Figure 6).
  stats::PersistenceFit combined;
};

/// Compute the persistence report from a facility series. Buckets where the
/// facility was entirely down (up_nodes == 0) are excluded so shutdown gaps
/// do not masquerade as variance.
[[nodiscard]] PersistenceReport persistence_analysis(
    const etl::SystemSeries& series, const std::vector<std::string>& metrics,
    const std::vector<double>& offsets_minutes);

/// Convenience: Table 1 metrics and offsets.
[[nodiscard]] PersistenceReport persistence_analysis(const etl::SystemSeries& series);

}  // namespace supremm::xdmod
