#include "xdmod/timeseries.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace supremm::xdmod {

double SeriesReport::max_value() const {
  double m = 0.0;
  for (const double x : v) m = std::max(m, x);
  return m;
}

double SeriesReport::mean_value() const {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

namespace {

struct Bucketizer {
  common::TimePoint start;
  common::Duration width;
  std::size_t n;

  Bucketizer(const etl::SystemSeries& s, common::Duration w)
      : start(s.start), width(w) {
    if (w <= 0 || w % s.bucket != 0) {
      throw common::InvalidArgument("display width must be a positive multiple of the bucket");
    }
    const common::Duration total = static_cast<common::Duration>(s.buckets) * s.bucket;
    n = static_cast<std::size_t>((total + w - 1) / w);
  }
};

}  // namespace

SeriesReport rebucket(const etl::SystemSeries& series, const std::string& metric,
                      common::Duration width, SeriesAgg agg) {
  const Bucketizer bz(series, width);
  const auto& src = series.series(metric);
  SeriesReport out;
  out.name = metric;
  out.t.resize(bz.n);
  out.v.assign(bz.n, 0.0);
  std::vector<std::size_t> counts(bz.n, 0);
  for (std::size_t i = 0; i < bz.n; ++i) {
    out.t[i] = bz.start + static_cast<common::Duration>(i) * width;
  }
  const auto per = static_cast<std::size_t>(width / series.bucket);
  for (std::size_t i = 0; i < series.buckets; ++i) {
    const std::size_t d = i / per;
    switch (agg) {
      case SeriesAgg::kMean:
      case SeriesAgg::kSum:
        out.v[d] += src[i];
        break;
      case SeriesAgg::kMax:
        out.v[d] = std::max(out.v[d], src[i]);
        break;
    }
    ++counts[d];
  }
  if (agg == SeriesAgg::kMean) {
    for (std::size_t d = 0; d < bz.n; ++d) {
      if (counts[d] > 0) out.v[d] /= static_cast<double>(counts[d]);
    }
  }
  return out;
}

CpuHoursReport cpu_hours_report(const etl::SystemSeries& series, common::Duration width) {
  const Bucketizer bz(series, width);
  CpuHoursReport out;
  out.t.resize(bz.n);
  out.user_core_h.assign(bz.n, 0.0);
  out.idle_core_h.assign(bz.n, 0.0);
  out.system_core_h.assign(bz.n, 0.0);
  for (std::size_t i = 0; i < bz.n; ++i) {
    out.t[i] = bz.start + static_cast<common::Duration>(i) * width;
  }
  const auto per = static_cast<std::size_t>(width / series.bucket);
  for (std::size_t i = 0; i < series.buckets; ++i) {
    const std::size_t d = i / per;
    out.user_core_h[d] += series.cpu_user_core_h[i];
    out.idle_core_h[d] += series.cpu_idle_core_h[i];
    out.system_core_h[d] += series.cpu_system_core_h[i];
  }
  return out;
}

LustreReport lustre_report(const etl::SystemSeries& series, common::Duration width) {
  const Bucketizer bz(series, width);
  LustreReport out;
  out.t.resize(bz.n);
  out.scratch_mb_s.assign(bz.n, 0.0);
  out.work_mb_s.assign(bz.n, 0.0);
  out.share_mb_s.assign(bz.n, 0.0);
  std::vector<std::size_t> counts(bz.n, 0);
  for (std::size_t i = 0; i < bz.n; ++i) {
    out.t[i] = bz.start + static_cast<common::Duration>(i) * width;
  }
  const auto per = static_cast<std::size_t>(width / series.bucket);
  for (std::size_t i = 0; i < series.buckets; ++i) {
    const std::size_t d = i / per;
    out.scratch_mb_s[d] += series.scratch_write_mb_s[i] + series.scratch_read_mb_s[i];
    out.work_mb_s[d] += series.work_write_mb_s[i];
    out.share_mb_s[d] += series.share_mb_s[i];
    ++counts[d];
  }
  for (std::size_t d = 0; d < bz.n; ++d) {
    if (counts[d] == 0) continue;
    const auto c = static_cast<double>(counts[d]);
    out.scratch_mb_s[d] /= c;
    out.work_mb_s[d] /= c;
    out.share_mb_s[d] /= c;
  }
  return out;
}

ScienceMemoryReport science_memory_report(std::span<const etl::JobSummary> jobs,
                                          std::size_t cores_per_node,
                                          common::TimePoint start, common::Duration span,
                                          common::Duration width) {
  if (width <= 0 || span <= 0) throw common::InvalidArgument("bad science report window");
  const auto n = static_cast<std::size_t>((span + width - 1) / width);

  std::map<std::string, std::size_t> science_index;
  for (const auto& j : jobs) {
    if (!j.science.empty()) science_index.emplace(j.science, 0);
  }
  ScienceMemoryReport out;
  for (auto& [name, idx] : science_index) {
    idx = out.sciences.size();
    out.sciences.push_back(name);
  }
  out.t.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.t[i] = start + static_cast<common::Duration>(i) * width;
  }
  std::vector<std::vector<double>> wsum(out.sciences.size(), std::vector<double>(n, 0.0));
  std::vector<std::vector<double>> w(out.sciences.size(), std::vector<double>(n, 0.0));

  const double cores = static_cast<double>(cores_per_node);
  for (const auto& j : jobs) {
    if (j.science.empty()) continue;
    const std::size_t s = science_index.at(j.science);
    const double mem_per_core = j.mem_used_gb / cores;
    // Overlap with each display bucket.
    const common::TimePoint jb = std::max(j.start, start);
    const common::TimePoint je = std::min(j.end, start + span);
    if (je <= jb) continue;
    std::size_t b0 = static_cast<std::size_t>((jb - start) / width);
    const std::size_t b1 = static_cast<std::size_t>((je - 1 - start) / width);
    for (std::size_t b = b0; b <= b1 && b < n; ++b) {
      const common::TimePoint bs = start + static_cast<common::Duration>(b) * width;
      const common::TimePoint be = bs + width;
      const double overlap = static_cast<double>(std::min(je, be) - std::max(jb, bs));
      if (overlap <= 0) continue;
      const double weight = overlap * static_cast<double>(j.nodes);
      wsum[s][b] += mem_per_core * weight;
      w[s][b] += weight;
    }
  }
  out.mem_gb_per_core.assign(out.sciences.size(), std::vector<double>(n, 0.0));
  for (std::size_t s = 0; s < out.sciences.size(); ++s) {
    for (std::size_t b = 0; b < n; ++b) {
      if (w[s][b] > 0) out.mem_gb_per_core[s][b] = wsum[s][b] / w[s][b];
    }
  }
  return out;
}

}  // namespace supremm::xdmod
