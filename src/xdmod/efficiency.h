// Wasted node-hours and efficiency analysis (Figure 4) plus anomalous-job
// detection for the user/support-staff reports.
//
// Paper §4.3.3: "'wasted' node-hours, that is, those spent with an idle CPU,
// vs total node-hours consumed... we define efficiency to be the percentage
// of time not spent in CPU idle."
#pragma once

#include <span>
#include <string>
#include <vector>

#include "etl/job_summary.h"

namespace supremm::xdmod {

struct UserEfficiency {
  std::string user;
  double node_hours = 0.0;
  double wasted_node_hours = 0.0;  // node_hours * cpu_idle
  std::size_t jobs = 0;

  [[nodiscard]] double efficiency() const noexcept {
    return node_hours > 0.0 ? 1.0 - wasted_node_hours / node_hours : 0.0;
  }
  [[nodiscard]] double idle_fraction() const noexcept { return 1.0 - efficiency(); }
};

/// Per-user totals, descending by node-hours.
[[nodiscard]] std::vector<UserEfficiency> user_efficiency(
    std::span<const etl::JobSummary> jobs);

/// Facility-wide node-hour weighted efficiency (the paper's 90% / 85% lines).
[[nodiscard]] double facility_efficiency(std::span<const etl::JobSummary> jobs);

/// Heavy users below an efficiency bar (the circled users of Figure 4):
/// consumed at least `min_node_hours` with efficiency < `max_efficiency`,
/// worst first.
[[nodiscard]] std::vector<UserEfficiency> inefficient_heavy_users(
    std::span<const etl::JobSummary> jobs, double min_node_hours, double max_efficiency);

/// A job whose metric deviates strongly from its application's typical use.
struct JobAnomaly {
  facility::JobId job_id = 0;
  std::string user;
  std::string app;
  std::string metric;
  double value = 0.0;
  double app_mean = 0.0;
  double zscore = 0.0;
};

/// Jobs whose key metrics sit more than `z_threshold` weighted standard
/// deviations from their application's mean (user report: "jobs with
/// anomalous or inefficient resource use patterns"). Strongest first.
[[nodiscard]] std::vector<JobAnomaly> anomalous_jobs(std::span<const etl::JobSummary> jobs,
                                                     double z_threshold);

/// Job completion failure profile: share of jobs / node-hours ending in each
/// exit condition, per application.
struct FailureProfile {
  std::string app;
  std::size_t jobs = 0;
  std::size_t failed = 0;        // non-zero exit status
  std::size_t system_killed = 0; // batch kill (maintenance drain)
  double node_hours = 0.0;

  [[nodiscard]] double failure_rate() const noexcept {
    return jobs > 0 ? static_cast<double>(failed) / static_cast<double>(jobs) : 0.0;
  }
};

[[nodiscard]] std::vector<FailureProfile> failure_profiles(
    std::span<const etl::JobSummary> jobs);

}  // namespace supremm::xdmod
