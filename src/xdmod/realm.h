// The XDMoD query model: a *realm* exposes named dimensions and statistics
// that stakeholders combine into custom reports (§4.3: "a powerful and
// flexible analysis interface that has many analyses reports preprogrammed
// and also the option for stakeholders to define custom reports").
//
// JobsRealm binds the ingested job summaries to:
//   dimensions: user, application, science, project, cluster, none
//   statistics: job_count, total_node_hours, wasted_node_hours,
//               failure_rate, avg_job_size_nodes, avg_wait_hours,
//               avg_<metric> (node-hour weighted) and max_<metric> for every
//               job metric, e.g. avg_cpu_idle, max_mem_used.
// Reports are produced as warehouse tables and can be rendered or exported.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/ascii_table.h"
#include "etl/job_summary.h"
#include "warehouse/query.h"

namespace supremm::xdmod {

class JobsRealm {
 public:
  explicit JobsRealm(std::span<const etl::JobSummary> jobs);

  /// Dimension names usable as group-by keys ("none" = whole-facility row).
  [[nodiscard]] static std::vector<std::string> dimensions();

  /// All statistic names this realm can compute.
  [[nodiscard]] static std::vector<std::string> statistics();

  [[nodiscard]] static bool has_dimension(std::string_view name);
  [[nodiscard]] static bool has_statistic(std::string_view name);

  struct ReportSpec {
    std::string dimension = "none";
    std::vector<std::string> statistics;
    /// Optional filter: keep only rows whose `filter_dimension` equals
    /// `filter_value` (e.g. dimension "application", value "NAMD").
    std::string filter_dimension;
    std::string filter_value;
    /// Sort descending by this statistic (must be in `statistics`); empty =
    /// group order.
    std::string sort_by;
    std::size_t limit = 0;  // 0 = all rows
    /// Worker threads for the warehouse query (1 = inline, 0 = hardware
    /// concurrency). The report is identical for any setting.
    std::size_t threads = 1;
  };

  /// Run a custom report. Throws NotFoundError for unknown dimension or
  /// statistic names.
  [[nodiscard]] warehouse::Table report(const ReportSpec& spec) const;

  /// Render a report as a terminal table.
  [[nodiscard]] common::AsciiTable render(const ReportSpec& spec) const;

 private:
  warehouse::Table table_;
};

}  // namespace supremm::xdmod
