#include "xdmod/advisor.h"

#include <algorithm>

#include "common/error.h"

namespace supremm::xdmod {

std::map<std::string, double> current_usage_norm(const etl::SystemSeries& series,
                                                 std::size_t bucket_index,
                                                 const std::vector<std::string>& metrics) {
  if (bucket_index >= series.buckets) {
    throw common::InvalidArgument("bucket index out of range");
  }
  std::map<std::string, double> out;
  for (const auto& m : metrics) {
    if (!series.has_series(m)) continue;  // e.g. mem_used_max is job-level only
    const auto& s = series.series(m);
    double peak = 0.0;
    for (const double v : s) peak = std::max(peak, v);
    out[m] = peak > 0.0 ? std::clamp(s[bucket_index] / peak, 0.0, 1.0) : 0.0;
  }
  return out;
}

QueueCandidate predict_candidate(const ProfileAnalyzer& analyzer, facility::JobId id,
                                 const std::string& user, const std::string& app) {
  QueueCandidate c;
  c.id = id;
  c.user = user;
  c.app = app;
  UsageProfile p = !app.empty() ? analyzer.profile(GroupBy::kApp, app)
                                : analyzer.profile(GroupBy::kUser, user);
  if (p.jobs == 0 && !app.empty()) p = analyzer.profile(GroupBy::kUser, user);
  for (const auto& e : p.entries) c.predicted_norm[e.metric] = e.normalized;
  return c;
}

std::vector<RankedCandidate> rank_candidates(const std::map<std::string, double>& current_norm,
                                             std::span<const QueueCandidate> candidates) {
  std::vector<RankedCandidate> out;
  out.reserve(candidates.size());
  for (const auto& c : candidates) {
    double score = 0.0;
    for (const auto& [metric, headroom_base] : current_norm) {
      const auto it = c.predicted_norm.find(metric);
      if (it == c.predicted_norm.end()) continue;
      // cpu_idle is waste, not demand: a candidate's idle never helps.
      if (metric == "cpu_idle") {
        score -= it->second;
        continue;
      }
      score += it->second * (1.0 - headroom_base);
    }
    out.push_back({c, score});
  }
  std::sort(out.begin(), out.end(), [](const RankedCandidate& a, const RankedCandidate& b) {
    return a.score != b.score ? a.score > b.score : a.candidate.id < b.candidate.id;
  });
  return out;
}

}  // namespace supremm::xdmod
