#include "xdmod/reports.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "xdmod/realm.h"

namespace supremm::xdmod {

using common::AsciiTable;
using common::strprintf;

std::string_view stakeholder_name(Stakeholder s) noexcept {
  switch (s) {
    case Stakeholder::kUser:
      return "User";
    case Stakeholder::kApplicationDeveloper:
      return "Application Developer";
    case Stakeholder::kSupportStaff:
      return "Support Staff";
    case Stakeholder::kSystemsAdministrator:
      return "Systems Administrator";
    case Stakeholder::kResourceManager:
      return "Resource Manager";
    case Stakeholder::kFundingAgency:
      return "Funding Agency";
  }
  return "Unknown";
}

std::vector<std::string> report_names(Stakeholder s) {
  switch (s) {
    case Stakeholder::kUser:
      return {"Resource use profile", "Comparative resource use",
              "Anomalous resource use patterns", "Job completion failure profile"};
    case Stakeholder::kApplicationDeveloper:
      return {"Application resource use profiles", "Cross-system comparison",
              "Anomalous executions", "Abnormal termination profile"};
    case Stakeholder::kSupportStaff:
      return {"Inefficient heavy users", "Anomalous jobs", "Major application profiles"};
    case Stakeholder::kSystemsAdministrator:
      return {"Usage persistence (forecasting)", "Active nodes", "Failure diagnostics",
              "Data quality"};
    case Stakeholder::kResourceManager:
      return {"System FLOPS", "Memory usage", "CPU hours", "Lustre filesystem traffic",
              "Workload characterization"};
    case Stakeholder::kFundingAgency:
      return {"Resource use by science area", "System efficiency", "Usage distributions"};
  }
  return {};
}

AsciiTable render_profile(const UsageProfile& p) {
  AsciiTable t(strprintf("Usage profile: %s (%.0f node-hours, %zu jobs)", p.entity.c_str(),
                         p.node_hours, p.jobs));
  t.header({"metric", "raw", "normalized", ""});
  for (const auto& e : p.entries) {
    t.add_row()
        .cell(e.metric)
        .cell(e.raw, "%.4g")
        .cell(e.normalized, "%.2f")
        .cell(common::ascii_bar(e.normalized, 4.0, 24));
  }
  return t;
}

AsciiTable render_profile_comparison(std::span<const UsageProfile> profiles,
                                     const std::vector<std::string>& metrics) {
  AsciiTable t("Normalized usage profiles (1.00 = facility average)");
  std::vector<std::string> head = {"metric"};
  for (const auto& p : profiles) head.push_back(p.entity);
  t.header(std::move(head));
  for (const auto& m : metrics) {
    auto row = t.add_row();
    row.cell(m);
    for (const auto& p : profiles) row.cell(p.entry(m).normalized, "%.2f");
  }
  return t;
}

AsciiTable render_efficiency(std::span<const UserEfficiency> users, double facility_eff,
                             std::size_t top_n) {
  AsciiTable t(strprintf("Node-hours vs wasted node-hours (facility efficiency %.0f%%)",
                         facility_eff * 100.0));
  t.header({"user", "node_hours", "wasted", "efficiency", "flag"});
  for (std::size_t i = 0; i < users.size() && i < top_n; ++i) {
    const auto& u = users[i];
    t.add_row()
        .cell(u.user)
        .cell(u.node_hours, "%.0f")
        .cell(u.wasted_node_hours, "%.0f")
        .cell(strprintf("%.0f%%", u.efficiency() * 100.0))
        .cell(u.efficiency() < facility_eff ? "BELOW-LINE" : "");
  }
  return t;
}

AsciiTable render_persistence(const PersistenceReport& r) {
  AsciiTable t("Persistence: offset sd / original sd (Table 1)");
  std::vector<std::string> head = {"Offset(min)"};
  for (const auto& m : r.metrics) head.push_back(m);
  t.header(std::move(head));
  for (std::size_t o = 0; o < r.offsets_minutes.size(); ++o) {
    auto row = t.add_row();
    row.cell(strprintf("%.0f", r.offsets_minutes[o]));
    for (std::size_t m = 0; m < r.metrics.size(); ++m) {
      const double v = r.ratios[m][o];
      row.cell(std::isnan(v) ? std::string() : strprintf("%.3f", v));
    }
  }
  auto fit = t.add_row();
  fit.cell("Fit R^2");
  for (std::size_t m = 0; m < r.metrics.size(); ++m) {
    fit.cell(std::isnan(r.fit_r2[m]) ? std::string() : strprintf("%.3f", r.fit_r2[m]));
  }
  return t;
}

AsciiTable render_distribution(const DistributionReport& d, std::size_t rows) {
  AsciiTable t(strprintf("Distribution of %s (%s); mean %.3g, max %.3g, bw %.3g",
                         d.name.c_str(), d.unit.c_str(), d.summary.mean, d.summary.max,
                         d.density.bandwidth));
  t.header({d.unit.empty() ? "x" : d.unit, "density", ""});
  double peak = 0.0;
  for (const double y : d.density.y) peak = std::max(peak, y);
  const std::size_t n = d.density.x.size();
  const std::size_t step = std::max<std::size_t>(1, n / std::max<std::size_t>(1, rows));
  for (std::size_t i = 0; i < n; i += step) {
    t.add_row()
        .cell(d.density.x[i], "%.3g")
        .cell(d.density.y[i], "%.4g")
        .cell(common::ascii_bar(d.density.y[i], peak, 40));
  }
  return t;
}

AsciiTable render_series(const SeriesReport& s, std::size_t max_rows) {
  AsciiTable t(strprintf("%s over time (mean %.3g, max %.3g)", s.name.c_str(),
                         s.mean_value(), s.max_value()));
  t.header({"t", s.unit.empty() ? "value" : s.unit, ""});
  const double peak = s.max_value();
  const std::size_t n = s.t.size();
  const std::size_t step = std::max<std::size_t>(1, n / std::max<std::size_t>(1, max_rows));
  for (std::size_t i = 0; i < n; i += step) {
    t.add_row()
        .cell(common::format_time(s.t[i]))
        .cell(s.v[i], "%.3g")
        .cell(common::ascii_bar(s.v[i], peak, 40));
  }
  return t;
}

AsciiTable render_anomalies(std::span<const JobAnomaly> anomalies, std::size_t top_n) {
  AsciiTable t("Jobs with anomalous resource use (|z| vs application mean)");
  t.header({"job", "user", "app", "metric", "value", "app_mean", "z"});
  for (std::size_t i = 0; i < anomalies.size() && i < top_n; ++i) {
    const auto& a = anomalies[i];
    t.add_row()
        .cell(static_cast<std::int64_t>(a.job_id))
        .cell(a.user)
        .cell(a.app)
        .cell(a.metric)
        .cell(a.value, "%.3g")
        .cell(a.app_mean, "%.3g")
        .cell(a.zscore, "%+.1f");
  }
  return t;
}

AsciiTable render_failures(std::span<const FailureProfile> profiles) {
  AsciiTable t("Job completion failure profiles by application");
  t.header({"app", "jobs", "failed", "system_killed", "failure_rate", "node_hours"});
  for (const auto& f : profiles) {
    t.add_row()
        .cell(f.app)
        .cell(static_cast<std::int64_t>(f.jobs))
        .cell(static_cast<std::int64_t>(f.failed))
        .cell(static_cast<std::int64_t>(f.system_killed))
        .cell(strprintf("%.1f%%", f.failure_rate() * 100.0))
        .cell(f.node_hours, "%.0f");
  }
  return t;
}

AsciiTable render_data_quality(const etl::DataQualityReport& q, std::size_t top_n) {
  std::string title = strprintf("Data quality: %.1f%% facility coverage, %llu quarantined lines",
                                100.0 * q.facility_coverage(),
                                static_cast<unsigned long long>(q.total_quarantined()));
  if (!q.corrupt_partitions.empty()) {
    // Count per fault class: a missing file, a corrupt one and an orphan
    // point an operator at different failure modes (see PartitionFault).
    std::size_t by_fault[3] = {0, 0, 0};
    for (const auto& p : q.corrupt_partitions) {
      ++by_fault[static_cast<std::size_t>(p.fault)];
    }
    const auto missing = by_fault[static_cast<std::size_t>(etl::PartitionFault::kMissing)];
    const auto corrupt = by_fault[static_cast<std::size_t>(etl::PartitionFault::kCorrupt)];
    const auto orphaned = by_fault[static_cast<std::size_t>(etl::PartitionFault::kOrphaned)];
    if (corrupt != 0) title += strprintf(", %zu corrupt archive partitions", corrupt);
    if (missing != 0) title += strprintf(", %zu missing archive partitions", missing);
    if (orphaned != 0) title += strprintf(", %zu orphaned archive partitions", orphaned);
  }
  if (q.recovery.any()) {
    title += strprintf(", recovery: %llu rolled forward / %llu rolled back / %llu orphans",
                       static_cast<unsigned long long>(q.recovery.commits_rolled_forward),
                       static_cast<unsigned long long>(q.recovery.commits_rolled_back),
                       static_cast<unsigned long long>(q.recovery.orphans_removed));
  }
  AsciiTable t(title);
  t.header({"host", "coverage", "quarantined", "dups", "reorder", "resets", "rollover",
            "no-end", "skew_s"});
  std::vector<const etl::HostQuality*> worst;
  worst.reserve(q.hosts.size());
  for (const auto& h : q.hosts) worst.push_back(&h);
  std::stable_sort(worst.begin(), worst.end(),
                   [&](const etl::HostQuality* a, const etl::HostQuality* b) {
                     return a->coverage(q.span) < b->coverage(q.span);
                   });
  etl::HostQuality total;
  for (const auto& h : q.hosts) {
    total.quarantined += h.quarantined;
    total.duplicates_dropped += h.duplicates_dropped;
    total.reordered += h.reordered;
    total.resets += h.resets;
    total.rollovers += h.rollovers;
    total.missing_job_end += h.missing_job_end;
  }
  for (std::size_t i = 0; i < worst.size() && i < top_n; ++i) {
    const auto& h = *worst[i];
    t.add_row()
        .cell(h.host)
        .cell(strprintf("%.1f%%", 100.0 * h.coverage(q.span)))
        .cell(static_cast<std::int64_t>(h.quarantined))
        .cell(static_cast<std::int64_t>(h.duplicates_dropped))
        .cell(static_cast<std::int64_t>(h.reordered))
        .cell(static_cast<std::int64_t>(h.resets))
        .cell(static_cast<std::int64_t>(h.rollovers))
        .cell(static_cast<std::int64_t>(h.missing_job_end))
        .cell(h.clock_skew_s);
  }
  t.add_row()
      .cell(strprintf("(all %zu hosts)", q.hosts.size()))
      .cell(strprintf("%.1f%%", 100.0 * q.facility_coverage()))
      .cell(static_cast<std::int64_t>(total.quarantined))
      .cell(static_cast<std::int64_t>(total.duplicates_dropped))
      .cell(static_cast<std::int64_t>(total.reordered))
      .cell(static_cast<std::int64_t>(total.resets))
      .cell(static_cast<std::int64_t>(total.rollovers))
      .cell(static_cast<std::int64_t>(total.missing_job_end))
      .cell(static_cast<std::int64_t>(0));
  for (const auto& p : q.corrupt_partitions) {
    t.add_row()
        .cell(strprintf("[archive] %s", p.file.c_str()))
        .cell(etl::partition_fault_name(p.fault))
        .cell(static_cast<std::int64_t>(0))
        .cell(static_cast<std::int64_t>(0))
        .cell(static_cast<std::int64_t>(0))
        .cell(static_cast<std::int64_t>(0))
        .cell(static_cast<std::int64_t>(0))
        .cell(static_cast<std::int64_t>(0))
        .cell(static_cast<std::int64_t>(0));
  }
  return t;
}

std::size_t write_reports(const DataContext& ctx, Stakeholder s, std::ostream& out) {
  std::size_t count = 0;
  auto emit = [&](const AsciiTable& t) {
    t.render(out);
    out << '\n';
    ++count;
  };
  out << "=== " << stakeholder_name(s) << " reports: " << ctx.cluster << " ===\n";
  if (!ctx.provenance.empty()) out << "source: " << ctx.provenance << '\n';
  out << '\n';

  const ProfileAnalyzer analyzer(ctx.jobs);
  switch (s) {
    case Stakeholder::kUser: {
      const auto profiles = analyzer.top_profiles(GroupBy::kUser, 5);
      for (const auto& p : profiles) emit(render_profile(p));
      emit(render_profile_comparison(profiles, analyzer.metrics()));
      emit(render_anomalies(anomalous_jobs(ctx.jobs, 4.0), 20));
      emit(render_failures(failure_profiles(ctx.jobs)));
      break;
    }
    case Stakeholder::kApplicationDeveloper: {
      const auto profiles = analyzer.top_profiles(GroupBy::kApp, 6);
      emit(render_profile_comparison(profiles, analyzer.metrics()));
      for (const auto& p : profiles) emit(render_profile(p));
      emit(render_failures(failure_profiles(ctx.jobs)));
      break;
    }
    case Stakeholder::kSupportStaff: {
      const auto users = user_efficiency(ctx.jobs);
      const double fe = facility_efficiency(ctx.jobs);
      emit(render_efficiency(users, fe, 30));
      const auto bad = inefficient_heavy_users(ctx.jobs, 100.0, 0.5);
      for (std::size_t i = 0; i < bad.size() && i < 2; ++i) {
        emit(render_profile(analyzer.profile(GroupBy::kUser, bad[i].user)));
      }
      emit(render_anomalies(anomalous_jobs(ctx.jobs, 4.0), 20));
      break;
    }
    case Stakeholder::kSystemsAdministrator: {
      if (ctx.series != nullptr) {
        emit(render_persistence(persistence_analysis(*ctx.series)));
        auto active = rebucket(*ctx.series, "active_nodes", common::kDay, SeriesAgg::kMean);
        active.unit = "nodes";
        emit(render_series(active));
      }
      emit(render_failures(failure_profiles(ctx.jobs)));
      if (ctx.quality != nullptr) emit(render_data_quality(*ctx.quality));
      break;
    }
    case Stakeholder::kResourceManager: {
      if (ctx.series != nullptr) {
        auto flops = rebucket(*ctx.series, "cpu_flops", common::kDay, SeriesAgg::kMean);
        flops.unit = "TF";
        emit(render_series(flops));
        auto mem = rebucket(*ctx.series, "mem_used", common::kDay, SeriesAgg::kMean);
        mem.unit = "GB/node";
        emit(render_series(mem));
      }
      emit(render_profile_comparison(analyzer.top_profiles(GroupBy::kApp, 6),
                                     analyzer.metrics()));
      // Workload characterization through the custom-report facade.
      const JobsRealm realm(ctx.jobs);
      JobsRealm::ReportSpec spec;
      spec.dimension = "science";
      spec.statistics = {"job_count", "total_node_hours", "avg_job_size_nodes",
                         "avg_mem_used", "avg_cpu_idle"};
      spec.sort_by = "total_node_hours";
      emit(realm.render(spec));
      break;
    }
    case Stakeholder::kFundingAgency: {
      emit(render_profile_comparison(analyzer.top_profiles(GroupBy::kScience, 8),
                                     analyzer.metrics()));
      const auto users = user_efficiency(ctx.jobs);
      emit(render_efficiency(users, facility_efficiency(ctx.jobs), 15));
      if (ctx.series != nullptr) emit(render_distribution(flops_distribution(*ctx.series)));
      break;
    }
  }
  return count;
}

}  // namespace supremm::xdmod
