#include "faultsim/faultsim.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <set>
#include <unordered_set>

#include "common/error.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/time.h"
#include "taccstats/reader.h"

namespace supremm::faultsim {

using common::RngStream;
using taccstats::ParsedFile;
using taccstats::RawFile;
using taccstats::Sample;

std::string_view fault_kind_name(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kTruncateFile:
      return "truncate-file";
    case FaultKind::kGarbageLines:
      return "garbage-lines";
    case FaultKind::kInterleavedWrite:
      return "interleaved-write";
    case FaultKind::kDuplicateSample:
      return "duplicate-sample";
    case FaultKind::kReorderSamples:
      return "reorder-samples";
    case FaultKind::kCounterReset:
      return "counter-reset";
    case FaultKind::kCounterRollover:
      return "counter-rollover";
    case FaultKind::kMissingJobEnd:
      return "missing-job-end";
    case FaultKind::kDropAccounting:
      return "drop-accounting";
    case FaultKind::kDropLariat:
      return "drop-lariat";
    case FaultKind::kClockSkew:
      return "clock-skew";
    case FaultKind::kCorruptArchive:
      return "corrupt-archive";
  }
  return "unknown";
}

const std::vector<std::string>& FaultPlan::profile_names() {
  static const std::vector<std::string> kNames = {
      "none",         "truncation",   "garbage",    "shuffle",
      "counter_glitch", "lost_records", "clock_skew", "bitrot", "chaos"};
  return kNames;
}

FaultPlan FaultPlan::profile(std::string_view name, std::uint64_t seed) {
  FaultPlan p = none(seed);
  if (name == "none") return p;
  if (name == "truncation") return p.add(FaultKind::kTruncateFile, 0.25, 0.6);
  if (name == "garbage") {
    return p.add(FaultKind::kGarbageLines, 0.2, 3).add(FaultKind::kInterleavedWrite, 0.2);
  }
  if (name == "shuffle") {
    return p.add(FaultKind::kDuplicateSample, 0.25).add(FaultKind::kReorderSamples, 0.25);
  }
  if (name == "counter_glitch") {
    return p.add(FaultKind::kCounterReset, 0.3).add(FaultKind::kCounterRollover, 0.3);
  }
  if (name == "lost_records") {
    return p.add(FaultKind::kMissingJobEnd, 0.2)
        .add(FaultKind::kDropAccounting, 0.08)
        .add(FaultKind::kDropLariat, 0.08);
  }
  if (name == "clock_skew") return p.add(FaultKind::kClockSkew, 0.3, 120);
  if (name == "bitrot") return p.add(FaultKind::kCorruptArchive, 0.3, 4);
  if (name == "chaos") {
    return p.add(FaultKind::kTruncateFile, 0.1, 0.7)
        .add(FaultKind::kGarbageLines, 0.1, 2)
        .add(FaultKind::kInterleavedWrite, 0.1)
        .add(FaultKind::kDuplicateSample, 0.1)
        .add(FaultKind::kReorderSamples, 0.1)
        .add(FaultKind::kCounterReset, 0.15)
        .add(FaultKind::kCounterRollover, 0.15)
        .add(FaultKind::kMissingJobEnd, 0.1)
        .add(FaultKind::kDropAccounting, 0.04)
        .add(FaultKind::kDropLariat, 0.04)
        .add(FaultKind::kClockSkew, 0.15, 120);
  }
  throw common::NotFoundError("fault profile '" + std::string(name) + "'");
}

namespace {

constexpr std::string_view kPerfTypes[] = {"amd64_pmc", "intel_wtm"};

bool is_perf_type(std::string_view type) {
  for (const auto t : kPerfTypes) {
    if (type == t) return true;
  }
  return false;
}

enum class LineClass : std::uint8_t { kOther, kHeader, kRow };

LineClass classify(const std::string& line) {
  if (line.empty()) return LineClass::kOther;
  const char c = line[0];
  if (c == '$' || c == '!') return LineClass::kOther;
  // A '-' lead is still a header: clock skew can push times negative, and
  // type rows are alphabetic (mirrors the reader's classification).
  if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
      (c == '-' && line.size() > 1 &&
       std::isdigit(static_cast<unsigned char>(line[1])) != 0)) {
    return LineClass::kHeader;
  }
  return LineClass::kRow;
}

std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < content.size()) {
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    lines.emplace_back(content.substr(pos, eol - pos));
    pos = eol + 1;
  }
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  std::size_t total = 0;
  for (const auto& l : lines) total += l.size() + 1;
  out.reserve(total);
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

std::size_t token_count(const std::string& line) {
  return common::split_ws(line).size();
}

/// Sample-block boundaries: index of every sample-header line.
std::vector<std::size_t> block_starts(const std::vector<std::string>& lines) {
  std::vector<std::size_t> starts;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (classify(lines[i]) == LineClass::kHeader) starts.push_back(i);
  }
  return starts;
}

std::size_t block_end(const std::vector<std::size_t>& starts, std::size_t b,
                      std::size_t nlines) {
  return b + 1 < starts.size() ? starts[b + 1] : nlines;
}

/// Time of the block's header line (headers are well formed when this runs).
std::int64_t block_time(const std::vector<std::string>& lines, std::size_t header) {
  const auto parts = common::split_ws(lines[header]);
  return common::parse_i64(parts[0]);
}

/// Stable per-unit stream: damage depends only on (seed, kind, identity),
/// never on iteration order.
RngStream unit_stream(std::uint64_t seed, std::string_view purpose, std::uint64_t ix) {
  return RngStream(seed, purpose, ix);
}

std::uint64_t host_ix(const std::string& host) { return common::hash_string(host); }

std::uint64_t file_ix(const RawFile& f) {
  return common::splitmix64(common::hash_string(f.hostname) ^
                            common::splitmix64(static_cast<std::uint64_t>(f.day)));
}

std::string serialize_parsed(const ParsedFile& pf) {
  const taccstats::RawWriter writer(pf.hostname, pf.schemas);
  std::string out = writer.header();
  for (const auto& s : pf.samples) writer.append_sample(s, out);
  return out;
}

/// Cut the file mid-row: everything from the cut point on is lost and the
/// partial row salvages as exactly one short-row quarantine.
bool truncate_file(RawFile& file, RngStream& rng, double magnitude, InjectionReport& rep) {
  auto lines = split_lines(file.content);
  double frac = magnitude > 0 ? magnitude : 0.6;
  frac = std::clamp(frac, 0.05, 0.95);
  const auto from = static_cast<std::size_t>(frac * static_cast<double>(lines.size()));
  std::size_t cut = lines.size();
  for (std::size_t i = from; i < lines.size(); ++i) {
    if (classify(lines[i]) == LineClass::kRow && token_count(lines[i]) >= 2) {
      cut = i;
      break;
    }
  }
  if (cut == lines.size()) {
    for (std::size_t i = std::min(from, lines.size() - 1) + 1; i-- > 0;) {
      if (classify(lines[i]) == LineClass::kRow && token_count(lines[i]) >= 2) {
        cut = i;
        break;
      }
    }
  }
  if (cut == lines.size()) return false;
  std::uint64_t lost = 0;
  for (std::size_t i = cut + 1; i < lines.size(); ++i) {
    if (classify(lines[i]) == LineClass::kHeader) ++lost;
  }
  (void)rng;
  const std::string partial = lines[cut].substr(0, lines[cut].find(' '));
  lines.resize(cut);
  file.content = join_lines(lines) + partial;  // mid-write: no trailing newline
  rep.samples_lost += lost;
  ++rep.files_truncated;
  ++rep.expected_quarantined;
  return true;
}

/// Re-store one sample block verbatim right after itself: salvage must drop
/// exactly one duplicate.
bool duplicate_sample(RawFile& file, RngStream& rng, bool truncated, InjectionReport& rep) {
  auto lines = split_lines(file.content);
  const auto starts = block_starts(lines);
  if (starts.empty()) return false;
  // A truncated file's final block ends in a partial row; duplicating it
  // would double the quarantine, so it is excluded.
  const std::size_t nblocks = truncated ? starts.size() - 1 : starts.size();
  if (nblocks == 0) return false;
  const auto b = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(nblocks) - 1));
  const std::size_t lo = starts[b];
  const std::size_t hi = block_end(starts, b, lines.size());
  std::vector<std::string> copy(lines.begin() + static_cast<std::ptrdiff_t>(lo),
                                lines.begin() + static_cast<std::ptrdiff_t>(hi));
  lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(hi), copy.begin(), copy.end());
  file.content = join_lines(lines);
  if (truncated) {
    // join_lines re-terminated the partial final row; restore the cut.
    file.content.pop_back();
  }
  ++rep.duplicated_samples;
  return true;
}

/// Swap two adjacent sample blocks with distinct times: salvage re-sorts
/// them and counts exactly one out-of-order sample.
bool reorder_samples(RawFile& file, RngStream& rng, bool truncated, InjectionReport& rep) {
  auto lines = split_lines(file.content);
  const auto starts = block_starts(lines);
  const std::size_t nblocks = truncated && !starts.empty() ? starts.size() - 1 : starts.size();
  std::vector<std::size_t> candidates;
  for (std::size_t b = 0; b + 1 < nblocks; ++b) {
    if (block_time(lines, starts[b]) < block_time(lines, starts[b + 1])) {
      candidates.push_back(b);
    }
  }
  if (candidates.empty()) return false;
  const std::size_t b = candidates[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
  const std::size_t lo = starts[b];
  const std::size_t mid = starts[b + 1];
  const std::size_t hi = block_end(starts, b + 1, lines.size());
  std::vector<std::string> swapped;
  swapped.reserve(hi - lo);
  swapped.insert(swapped.end(), lines.begin() + static_cast<std::ptrdiff_t>(mid),
                 lines.begin() + static_cast<std::ptrdiff_t>(hi));
  swapped.insert(swapped.end(), lines.begin() + static_cast<std::ptrdiff_t>(lo),
                 lines.begin() + static_cast<std::ptrdiff_t>(mid));
  std::copy(swapped.begin(), swapped.end(), lines.begin() + static_cast<std::ptrdiff_t>(lo));
  file.content = join_lines(lines);
  if (truncated) file.content.pop_back();
  ++rep.reorder_swaps;
  return true;
}

/// Remove a job-end sample block whose begin mark is present on the host:
/// salvage counts exactly one missing job end. The final block of the host's
/// last file is never dropped (ingest only counts a missing end when sampling
/// provably continued after the job's last sample), nor is the partial final
/// block of a truncated file.
bool drop_job_end(RawFile& file, RngStream& rng, bool exclude_last_block,
                  const std::set<std::int64_t>& begun, InjectionReport& rep) {
  auto lines = split_lines(file.content);
  const auto starts = block_starts(lines);
  const std::size_t nblocks =
      exclude_last_block && !starts.empty() ? starts.size() - 1 : starts.size();
  std::vector<std::size_t> candidates;
  for (std::size_t b = 0; b < nblocks; ++b) {
    const auto parts = common::split_ws(lines[starts[b]]);
    if (parts.size() == 3 && parts[2] == "end" &&
        begun.count(common::parse_i64(parts[1])) != 0) {
      candidates.push_back(b);
    }
  }
  if (candidates.empty()) return false;
  const std::size_t b = candidates[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
  const std::size_t lo = starts[b];
  const std::size_t hi = block_end(starts, b, lines.size());
  lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(lo),
              lines.begin() + static_cast<std::ptrdiff_t>(hi));
  const bool partial_tail = !file.content.empty() && file.content.back() != '\n';
  file.content = join_lines(lines);
  if (partial_tail) file.content.pop_back();
  ++rep.job_ends_dropped;
  ++rep.samples_lost;
  return true;
}

/// Merge two adjacent well-formed data rows into one line (unsynchronized
/// append): salvage quarantines exactly one field-count-mismatch row.
bool interleave_rows(RawFile& file, RngStream& rng, InjectionReport& rep) {
  auto lines = split_lines(file.content);
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    if (classify(lines[i]) == LineClass::kRow && classify(lines[i + 1]) == LineClass::kRow &&
        token_count(lines[i]) >= 2 && token_count(lines[i + 1]) >= 2) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) return false;
  const std::size_t i = candidates[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
  lines[i] += ' ';
  lines[i] += lines[i + 1];
  lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(i) + 1);
  const bool partial_tail = !file.content.empty() && file.content.back() != '\n';
  file.content = join_lines(lines);
  if (partial_tail) file.content.pop_back();
  ++rep.interleaved_rows;
  ++rep.expected_quarantined;
  return true;
}

/// Splice foreign lines into the stream: each salvages as exactly one
/// quarantined line (undeclared type, or orphan row in the header region).
void garbage_lines(RawFile& file, RngStream& rng, double magnitude, InjectionReport& rep) {
  auto lines = split_lines(file.content);
  const auto n = static_cast<std::size_t>(magnitude > 0 ? magnitude : 2);
  std::vector<std::size_t> positions;
  positions.reserve(n);
  std::vector<std::string> payloads;
  payloads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    positions.push_back(static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(lines.size()))));
    payloads.push_back(common::strprintf(
        "#corrupt %016llx", static_cast<unsigned long long>(
                                rng.uniform_int(0, std::numeric_limits<std::int64_t>::max()))));
  }
  // Insert from the back so earlier positions stay valid.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return positions[a] > positions[b]; });
  for (const std::size_t i : order) {
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(positions[i]), payloads[i]);
  }
  const bool partial_tail = !file.content.empty() && file.content.back() != '\n';
  file.content = join_lines(lines);
  if (partial_tail) file.content.pop_back();
  rep.garbage_lines += n;
  rep.expected_quarantined += n;
}

/// Host-wide parsed view used by the counter-glitch faults.
struct HostSamples {
  std::vector<ParsedFile> files;
  std::vector<Sample*> seq;  // all samples, day order
};

HostSamples parse_host(const std::vector<RawFile*>& host_files) {
  HostSamples hs;
  hs.files.reserve(host_files.size());
  for (const RawFile* f : host_files) hs.files.push_back(taccstats::parse_raw(f->content));
  for (auto& pf : hs.files) {
    for (auto& s : pf.samples) hs.seq.push_back(&s);
  }
  return hs;
}

constexpr common::Duration kUsablePairGap = 15 * common::kMinute;

/// Usable-pair candidates: adjacent samples close enough that ingest will
/// turn them into a rate pair.
std::vector<std::size_t> pair_candidates(const std::vector<Sample*>& seq) {
  std::vector<std::size_t> out;
  for (std::size_t k = 1; k < seq.size(); ++k) {
    const auto dt = seq[k]->time - seq[k - 1]->time;
    if (dt > 0 && dt <= kUsablePairGap) out.push_back(k);
  }
  return out;
}

const std::vector<std::uint64_t>* cpu_row0(const Sample* s) {
  const auto* rec = s->find("cpu");
  if (rec == nullptr || rec->rows.empty()) return nullptr;
  return &rec->rows[0].values;
}

/// Node reboot: every event counter restarts from zero at sample k and
/// counts on from there, across the rest of the host's files. Exactly one
/// pair (k-1, k) is reset-corrected; every later delta is unchanged.
bool inject_reset(HostSamples& hs, RngStream& rng, InjectionReport& rep) {
  std::vector<std::size_t> candidates;
  for (const std::size_t k : pair_candidates(hs.seq)) {
    const auto* prev_cpu = cpu_row0(hs.seq[k - 1]);
    // The reset is detected through a counter that was nonzero before it.
    if (prev_cpu != nullptr && prev_cpu->size() > 3 && (*prev_cpu)[3] > 0 &&
        cpu_row0(hs.seq[k]) != nullptr) {
      candidates.push_back(k);
    }
  }
  if (candidates.empty()) return false;
  const std::size_t k = candidates[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
  const auto& schemas = hs.files.front().schemas.all();
  for (const auto& schema : schemas) {
    if (is_perf_type(schema.type)) continue;  // perf slots clear per job already
    const auto* at_k = hs.seq[k]->find(schema.type);
    if (at_k == nullptr) continue;
    for (std::size_t f = 0; f < schema.fields.size(); ++f) {
      if (schema.fields[f].kind != taccstats::FieldKind::kEvent) continue;
      for (std::size_t r = 0; r < at_k->rows.size(); ++r) {
        if (f >= at_k->rows[r].values.size()) continue;
        const std::uint64_t base = at_k->rows[r].values[f];
        if (base == 0) continue;
        // Only shift counters that stay monotonic over the shifted suffix;
        // anything that restarts on its own (e.g. per-job clears) is left
        // alone so no extra reset pair appears.
        bool monotonic = true;
        for (std::size_t j = k; j < hs.seq.size() && monotonic; ++j) {
          const auto* rec = hs.seq[j]->find(schema.type);
          if (rec == nullptr || r >= rec->rows.size() ||
              f >= rec->rows[r].values.size()) {
            continue;
          }
          monotonic = rec->rows[r].values[f] >= base;
        }
        if (!monotonic) continue;
        for (std::size_t j = k; j < hs.seq.size(); ++j) {
          auto* rec = const_cast<taccstats::TypeRecord*>(hs.seq[j]->find(schema.type));
          if (rec == nullptr || r >= rec->rows.size() || f >= rec->rows[r].values.size()) {
            continue;
          }
          rec->rows[r].values[f] -= base;
        }
      }
    }
  }
  ++rep.counter_resets;
  return true;
}

/// u64 wrap-around: shift one monotonic counter so it crosses 2^64 between
/// one chosen pair. Every delta is preserved under wrapped arithmetic, so
/// salvage output matches clean output except for exactly one
/// rollover-corrected pair.
bool inject_rollover(HostSamples& hs, RngStream& rng, InjectionReport& rep) {
  constexpr std::size_t kIdle = 3;  // cpu schema: user nice system idle ...
  // The shifted counter must be monotonic across the whole host timeline.
  std::uint64_t last = 0;
  for (const Sample* s : hs.seq) {
    const auto* row = cpu_row0(s);
    if (row == nullptr || row->size() <= kIdle) continue;
    if ((*row)[kIdle] < last) return false;
    last = (*row)[kIdle];
  }
  std::vector<std::size_t> candidates;
  for (const std::size_t g : pair_candidates(hs.seq)) {
    const auto* pa = cpu_row0(hs.seq[g - 1]);
    const auto* pb = cpu_row0(hs.seq[g]);
    if (pa != nullptr && pb != nullptr && pa->size() > kIdle && pb->size() > kIdle &&
        (*pb)[kIdle] > (*pa)[kIdle]) {
      candidates.push_back(g);
    }
  }
  if (candidates.empty()) return false;
  const std::size_t g = candidates[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1))];
  const std::uint64_t va = (*cpu_row0(hs.seq[g - 1]))[kIdle];
  const std::uint64_t vb = (*cpu_row0(hs.seq[g]))[kIdle];
  const std::uint64_t mid = va + (vb - va + 1) / 2;  // va < mid <= vb
  const std::uint64_t shift = 0ULL - mid;            // counters >= mid wrap past 2^64
  for (Sample* s : hs.seq) {
    auto* rec = const_cast<taccstats::TypeRecord*>(s->find("cpu"));
    if (rec == nullptr || rec->rows.empty() || rec->rows[0].values.size() <= kIdle) continue;
    rec->rows[0].values[kIdle] += shift;
  }
  ++rep.counter_rollovers;
  return true;
}

/// Shift every sample time on one host by a constant: salvage estimates the
/// offset from job-begin marks vs accounting starts and removes it.
bool inject_skew(std::vector<RawFile*>& host_files, RngStream& rng, double magnitude,
                 const std::unordered_set<std::int64_t>& acct_jobs, InjectionReport& rep) {
  // The correction needs at least one begin mark with an accounting record.
  bool correctable = false;
  for (const RawFile* f : host_files) {
    for (const auto& line : split_lines(f->content)) {
      if (classify(line) != LineClass::kHeader) continue;
      const auto parts = common::split_ws(line);
      if (parts.size() == 3 && parts[2] == "begin" &&
          acct_jobs.count(common::parse_i64(parts[1])) != 0) {
        correctable = true;
        break;
      }
    }
    if (correctable) break;
  }
  if (!correctable) return false;
  const auto mag = static_cast<std::int64_t>(magnitude > 0 ? magnitude : 300);
  const std::int64_t skew = rng.uniform_int(1, mag) * (rng.chance(0.5) ? -1 : 1);
  for (RawFile* f : host_files) {
    auto lines = split_lines(f->content);
    for (auto& line : lines) {
      if (classify(line) != LineClass::kHeader) continue;
      const std::size_t sp = line.find(' ');
      const std::int64_t t = common::parse_i64(line.substr(0, sp));
      line = std::to_string(t + skew) + line.substr(sp);
    }
    f->content = join_lines(lines);
  }
  ++rep.hosts_skewed;
  rep.skews.emplace_back(host_files.front()->hostname, skew);
  return true;
}

}  // namespace

InjectionReport FaultInjector::apply(std::vector<RawFile>& files,
                                     std::vector<accounting::AccountingRecord>& acct,
                                     std::vector<lariat::LariatRecord>& lariat) const {
  InjectionReport rep;
  const auto spec = [&](FaultKind k) -> const FaultSpec* {
    for (const auto& f : plan_.faults) {
      if (f.kind == k && f.rate > 0) return &f;
    }
    return nullptr;
  };
  const std::uint64_t seed = plan_.seed;

  std::map<std::string, std::vector<RawFile*>> hosts;
  for (auto& f : files) hosts[f.hostname].push_back(&f);
  for (auto& [host, fs] : hosts) {
    std::sort(fs.begin(), fs.end(),
              [](const RawFile* a, const RawFile* b) { return a->day < b->day; });
  }

  // Value-level faults first, while every file still parses strictly.
  const auto* reset = spec(FaultKind::kCounterReset);
  const auto* rollover = spec(FaultKind::kCounterRollover);
  if (reset != nullptr || rollover != nullptr) {
    for (auto& [host, fs] : hosts) {
      RngStream reset_rng = unit_stream(seed, "faultsim.reset", host_ix(host));
      RngStream roll_rng = unit_stream(seed, "faultsim.rollover", host_ix(host));
      const bool want_reset = reset != nullptr && reset_rng.chance(reset->rate);
      const bool want_roll = rollover != nullptr && roll_rng.chance(rollover->rate);
      if (!want_reset && !want_roll) continue;
      HostSamples hs = parse_host(fs);
      bool touched = false;
      if (want_reset) touched = inject_reset(hs, reset_rng, rep) || touched;
      if (want_roll) touched = inject_rollover(hs, roll_rng, rep) || touched;
      if (touched) {
        for (std::size_t i = 0; i < fs.size(); ++i) {
          fs[i]->content = serialize_parsed(hs.files[i]);
        }
      }
    }
  }

  if (const auto* skew = spec(FaultKind::kClockSkew); skew != nullptr) {
    std::unordered_set<std::int64_t> acct_jobs;
    acct_jobs.reserve(acct.size());
    for (const auto& a : acct) acct_jobs.insert(a.job_id);
    for (auto& [host, fs] : hosts) {
      RngStream rng = unit_stream(seed, "faultsim.skew", host_ix(host));
      if (!rng.chance(skew->rate)) continue;
      (void)inject_skew(fs, rng, skew->magnitude, acct_jobs, rep);
    }
  }

  // Structural text faults. Truncation runs before the block-level faults so
  // they can exclude the damaged final block, and the line-splice faults run
  // last so nothing rewrites their exactly-counted damage.
  std::unordered_set<const RawFile*> truncated;
  if (const auto* s = spec(FaultKind::kTruncateFile); s != nullptr) {
    for (auto& f : files) {
      RngStream rng = unit_stream(seed, "faultsim.truncate", file_ix(f));
      if (!rng.chance(s->rate)) continue;
      if (truncate_file(f, rng, s->magnitude, rep)) truncated.insert(&f);
    }
  }
  if (const auto* s = spec(FaultKind::kMissingJobEnd); s != nullptr) {
    for (auto& [host, fs] : hosts) {
      std::set<std::int64_t> begun;
      for (const RawFile* f : fs) {
        for (const auto& line : split_lines(f->content)) {
          if (classify(line) != LineClass::kHeader) continue;
          const auto parts = common::split_ws(line);
          if (parts.size() == 3 && parts[2] == "begin") {
            begun.insert(common::parse_i64(parts[1]));
          }
        }
      }
      const RawFile* host_last = fs.front();
      for (const RawFile* f : fs) {
        if (f->day > host_last->day) host_last = f;
      }
      for (RawFile* f : fs) {
        RngStream rng = unit_stream(seed, "faultsim.jobend", file_ix(*f));
        if (!rng.chance(s->rate)) continue;
        (void)drop_job_end(*f, rng, truncated.count(f) != 0 || f == host_last, begun, rep);
      }
    }
  }
  if (const auto* s = spec(FaultKind::kDuplicateSample); s != nullptr) {
    for (auto& f : files) {
      RngStream rng = unit_stream(seed, "faultsim.duplicate", file_ix(f));
      if (!rng.chance(s->rate)) continue;
      (void)duplicate_sample(f, rng, truncated.count(&f) != 0, rep);
    }
  }
  if (const auto* s = spec(FaultKind::kReorderSamples); s != nullptr) {
    for (auto& f : files) {
      RngStream rng = unit_stream(seed, "faultsim.reorder", file_ix(f));
      if (!rng.chance(s->rate)) continue;
      (void)reorder_samples(f, rng, truncated.count(&f) != 0, rep);
    }
  }
  if (const auto* s = spec(FaultKind::kInterleavedWrite); s != nullptr) {
    for (auto& f : files) {
      RngStream rng = unit_stream(seed, "faultsim.interleave", file_ix(f));
      if (!rng.chance(s->rate)) continue;
      (void)interleave_rows(f, rng, rep);
    }
  }
  if (const auto* s = spec(FaultKind::kGarbageLines); s != nullptr) {
    for (auto& f : files) {
      RngStream rng = unit_stream(seed, "faultsim.garbage", file_ix(f));
      if (!rng.chance(s->rate)) continue;
      garbage_lines(f, rng, s->magnitude, rep);
    }
  }

  if (const auto* s = spec(FaultKind::kDropAccounting); s != nullptr) {
    std::vector<accounting::AccountingRecord> kept;
    kept.reserve(acct.size());
    for (auto& r : acct) {
      RngStream rng = unit_stream(seed, "faultsim.acct",
                                  static_cast<std::uint64_t>(r.job_id));
      if (rng.chance(s->rate)) {
        rep.dropped_acct_jobs.push_back(r.job_id);
        ++rep.acct_dropped;
      } else {
        kept.push_back(std::move(r));
      }
    }
    acct = std::move(kept);
  }
  if (const auto* s = spec(FaultKind::kDropLariat); s != nullptr) {
    std::vector<lariat::LariatRecord> kept;
    kept.reserve(lariat.size());
    for (auto& r : lariat) {
      RngStream rng = unit_stream(seed, "faultsim.lariat",
                                  static_cast<std::uint64_t>(r.job_id));
      if (rng.chance(s->rate)) {
        rep.dropped_lariat_jobs.push_back(r.job_id);
        ++rep.lariat_dropped;
      } else {
        kept.push_back(std::move(r));
      }
    }
    lariat = std::move(kept);
  }
  return rep;
}

InjectionReport FaultInjector::apply_archive(const std::string& dir) const {
  namespace fs = std::filesystem;
  InjectionReport rep;
  const FaultSpec* s = nullptr;
  for (const auto& f : plan_.faults) {
    if (f.kind == FaultKind::kCorruptArchive && f.rate > 0) s = &f;
  }
  if (s == nullptr || !fs::exists(dir)) return rep;

  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".part") {
      names.push_back(entry.path().filename().string());
    }
  }
  std::sort(names.begin(), names.end());

  for (const auto& name : names) {
    RngStream rng = unit_stream(plan_.seed, "faultsim.archive", common::hash_string(name));
    if (!rng.chance(s->rate)) continue;
    const fs::path path = fs::path(dir) / name;
    std::string bytes;
    {
      std::ifstream in(path, std::ios::binary);
      bytes.assign((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    }
    if (bytes.empty()) continue;
    const auto flips = static_cast<std::size_t>(s->magnitude > 0 ? s->magnitude : 1);
    for (std::size_t i = 0; i < flips; ++i) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[pos] = static_cast<char>(
          static_cast<unsigned char>(bytes[pos]) ^
          static_cast<unsigned char>(1U << rng.uniform_int(0, 7)));
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ++rep.partitions_corrupted;
    rep.corrupted_files.push_back(name);
  }
  return rep;
}

common::IoDecision KillPointPolicy::on_op(common::IoOp op, const std::string& path,
                                          std::size_t bytes) {
  const std::uint64_t n = ops_.fetch_add(1) + 1;
  if (n != kill_at_ || triggered_.exchange(true)) return common::IoDecision::proceed();
  if (mode_ == Mode::kTornWrite && op == common::IoOp::kWrite && bytes > 0) {
    // Persist a seeded prefix (possibly empty, never the whole buffer: that
    // would be a completed write) before dying.
    RngStream rng(seed_, "faultsim.torn", kill_at_);
    common::IoDecision d;
    d.action = common::IoDecision::Action::kTornWrite;
    d.torn_bytes =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(bytes) - 1));
    return d;
  }
  throw common::SimulatedCrash(op, path, n);
}

common::IoDecision EnospcPolicy::on_op(common::IoOp op, const std::string& path,
                                       std::size_t bytes) {
  (void)path;
  (void)bytes;
  const std::uint64_t n = ops_.fetch_add(1) + 1;
  const bool consumes_space = op == common::IoOp::kOpen || op == common::IoOp::kWrite ||
                              op == common::IoOp::kMkdir;
  if (n < full_from_ || !consumes_space) return common::IoDecision::proceed();
  failures_.fetch_add(1);
  common::IoDecision d;
  d.action = common::IoDecision::Action::kFail;
  d.error = "ENOSPC (injected): no space left on device";
  return d;
}

}  // namespace supremm::faultsim
