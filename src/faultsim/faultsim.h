// Deterministic fault injection for pipeline robustness testing.
//
// A facility the size of Ranger loses data constantly: collectors die
// mid-write, NFS interleaves concurrent appends, nodes reboot and their
// counters restart, clocks drift, accounting exports are incomplete. The
// fault injector mutates the artifacts between pipeline stages - raw
// TACC_Stats files, accounting logs, Lariat records - the same way, so the
// salvage-mode ingest path can be tested against damage whose exact extent
// is known.
//
// Determinism contract: for a given FaultPlan seed the damage is
// bit-identical across runs and independent of file iteration order. Every
// random draw comes from an RngStream derived from (seed, fault kind,
// host/day identity), never from a shared generator.
//
// Exactness contract: each injected fault maps to a known, countable effect
// on salvage ingest (see InjectionReport). E.g. every garbage line produces
// exactly one quarantined line; every truncation produces exactly one
// quarantined partial row plus N lost samples; every counter reset produces
// exactly one reset-corrected pair. The round-trip property tests in
// tests/test_faultsim.cpp assert these equalities.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "accounting/accounting.h"
#include "common/io.h"
#include "facility/jobs.h"
#include "lariat/lariat.h"
#include "taccstats/writer.h"

namespace supremm::faultsim {

/// The damage vocabulary (what actually goes wrong at a facility).
enum class FaultKind : std::uint8_t {
  kTruncateFile,      // collector died mid-write: file cut inside a data row
  kGarbageLines,      // foreign bytes spliced into the stream
  kInterleavedWrite,  // two rows merged by unsynchronized appends
  kDuplicateSample,   // a sample block re-sent and stored twice
  kReorderSamples,    // adjacent sample blocks swapped on disk
  kCounterReset,      // node rebooted: event counters restart from zero
  kCounterRollover,   // a u64 counter wrapped around between two samples
  kMissingJobEnd,     // the job-end sample block was never written
  kDropAccounting,    // accounting records lost from the export
  kDropLariat,        // Lariat records lost from the export
  kClockSkew,         // one host's clock offset from the facility's
  kCorruptArchive,    // bitrot in stored archive partition files
};

[[nodiscard]] std::string_view fault_kind_name(FaultKind k) noexcept;

/// One kind of fault at a given intensity. `rate` is the selection
/// probability of the fault's unit (per file for file-local damage, per
/// host for host-wide damage, per record for record drops). `magnitude` is
/// kind-specific: truncation cut position as a fraction of the file,
/// garbage line count, maximum clock skew in seconds; 0 = kind default.
struct FaultSpec {
  FaultKind kind = FaultKind::kGarbageLines;
  double rate = 0.0;
  double magnitude = 0.0;
};

/// A composable, seeded damage recipe.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSpec> faults;

  FaultPlan& add(FaultKind kind, double rate, double magnitude = 0.0) {
    faults.push_back({kind, rate, magnitude});
    return *this;
  }

  /// The zero-fault plan: applying it must leave every artifact untouched.
  [[nodiscard]] static FaultPlan none(std::uint64_t seed) { return FaultPlan{seed, {}}; }

  /// Built-in profile names ("none", "truncation", "garbage", ...).
  [[nodiscard]] static const std::vector<std::string>& profile_names();

  /// A named damage profile; throws NotFoundError for unknown names.
  [[nodiscard]] static FaultPlan profile(std::string_view name, std::uint64_t seed);
};

/// Exactly what was injected, in units salvage ingest can be held to.
struct InjectionReport {
  std::uint64_t files_truncated = 0;    // one quarantined partial row each
  std::uint64_t garbage_lines = 0;      // one quarantined line each
  std::uint64_t interleaved_rows = 0;   // one quarantined merged row each
  std::uint64_t duplicated_samples = 0; // one dropped duplicate each
  std::uint64_t reorder_swaps = 0;      // one re-sorted descent each
  std::uint64_t counter_resets = 0;     // one reset-corrected pair each
  std::uint64_t counter_rollovers = 0;  // one rollover-corrected pair each
  std::uint64_t job_ends_dropped = 0;   // one missing-job-end host/job each
  std::uint64_t acct_dropped = 0;
  std::uint64_t lariat_dropped = 0;
  std::uint64_t hosts_skewed = 0;       // one corrected host each
  std::uint64_t partitions_corrupted = 0;  // one quarantined partition each
  std::uint64_t samples_lost = 0;       // sample headers destroyed outright
  /// Lines salvage parsing must quarantine (sum of the per-kind effects).
  std::uint64_t expected_quarantined = 0;
  std::vector<facility::JobId> dropped_acct_jobs;
  std::vector<facility::JobId> dropped_lariat_jobs;
  std::vector<std::pair<std::string, std::int64_t>> skews;  // host -> seconds
  std::vector<std::string> corrupted_files;  // damaged archive partitions

  [[nodiscard]] bool any() const noexcept {
    return files_truncated + garbage_lines + interleaved_rows + duplicated_samples +
               reorder_swaps + counter_resets + counter_rollovers + job_ends_dropped +
               acct_dropped + lariat_dropped + hosts_skewed + partitions_corrupted !=
           0;
  }
};

/// Applies a FaultPlan to pipeline artifacts in place.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Damage the artifacts per the plan. Mutates in place; returns the exact
  /// injection accounting. Deterministic for a given plan seed.
  InjectionReport apply(std::vector<taccstats::RawFile>& files,
                        std::vector<accounting::AccountingRecord>& acct,
                        std::vector<lariat::LariatRecord>& lariat) const;

  /// Flip bits in the stored archive partition files under `dir` (bitrot /
  /// torn writes at rest). The MANIFEST is never touched - the archive
  /// reader must detect every damaged partition by checksum and quarantine
  /// it. Damage is keyed by partition filename, so it is deterministic and
  /// independent of directory iteration order. Each selected partition
  /// counts once in partitions_corrupted and is listed in corrupted_files.
  InjectionReport apply_archive(const std::string& dir) const;

 private:
  FaultPlan plan_;
};

/// Deterministic seeded kill point for the archive's commit protocol
/// (DESIGN.md §14): the process "dies" (common::SimulatedCrash) immediately
/// before performing the `kill_at`-th I/O operation (1-based) — or, in torn
/// mode, if that operation is a write, a seeded prefix of the buffer
/// reaches the disk first. Count a commit's operations with
/// common::CountingIoPolicy, then sweep kill_at over [1, total] to
/// enumerate every reachable crash state. Fires at most once; thread-safe.
class KillPointPolicy : public common::IoPolicy {
 public:
  enum class Mode : std::uint8_t {
    kCrashBefore,  // die before the op: nothing of it reaches the disk
    kTornWrite,    // tear the op if it is a write: a seeded prefix survives
  };

  KillPointPolicy(std::uint64_t kill_at, Mode mode = Mode::kCrashBefore,
                  std::uint64_t seed = 0)
      : kill_at_(kill_at), mode_(mode), seed_(seed) {}

  common::IoDecision on_op(common::IoOp op, const std::string& path,
                           std::size_t bytes) override;

  /// Operations observed so far (whether or not the kill point fired).
  [[nodiscard]] std::uint64_t ops_seen() const noexcept { return ops_.load(); }
  /// Did the crash fire? False means the sweep ran past the op sequence.
  [[nodiscard]] bool triggered() const noexcept { return triggered_.load(); }

 private:
  std::uint64_t kill_at_;
  Mode mode_;
  std::uint64_t seed_;
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<bool> triggered_{false};
};

/// Injected disk-full: from the `full_from`-th operation onward (1-based),
/// every space-consuming operation (open/write/mkdir) fails with ENOSPC.
/// Unlike a kill point the process survives — the archive must abort the
/// commit, keep the pre-commit state servable and surface an ArchiveError.
class EnospcPolicy : public common::IoPolicy {
 public:
  explicit EnospcPolicy(std::uint64_t full_from) : full_from_(full_from) {}

  common::IoDecision on_op(common::IoOp op, const std::string& path,
                           std::size_t bytes) override;

  [[nodiscard]] std::uint64_t ops_seen() const noexcept { return ops_.load(); }
  [[nodiscard]] std::uint64_t failures() const noexcept { return failures_.load(); }

 private:
  std::uint64_t full_from_;
  std::atomic<std::uint64_t> ops_{0};
  std::atomic<std::uint64_t> failures_{0};
};

}  // namespace supremm::faultsim
