// One-call driver for the full paper workflow (Figure 1): describe a
// facility, generate and schedule a workload, run TACC_Stats collection on
// every node, emit the side-channel logs, and ingest everything into job
// summaries + facility series. Tests, benches and examples all build on
// this; fine-grained control remains available through the per-module APIs.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "accounting/accounting.h"
#include "etl/ingest.h"
#include "facility/engine.h"
#include "facility/hardware.h"
#include "facility/scheduler.h"
#include "facility/users.h"
#include "facility/workload.h"
#include "lariat/lariat.h"
#include "service/service.h"
#include "taccstats/agent.h"

namespace supremm::pipeline {

struct PipelineConfig {
  facility::ClusterSpec spec;           // e.g. facility::scaled(facility::ranger(), 0.02)
  common::TimePoint start = 0;
  common::Duration span = 30 * common::kDay;
  std::uint64_t seed = 2013;
  bool with_maintenance = false;
  double load_factor = 1.0;
  taccstats::AgentConfig agent;          // collection cadence etc.
  /// Worker threads for collection, ingest and archive I/O (0 = hardware
  /// concurrency). Results are bit-identical for any setting (DESIGN.md §7).
  std::size_t threads = 0;
  /// Strict (default) aborts ingest on malformed raw data; salvage recovers
  /// what it can and fills the DataQualityReport (DESIGN.md §8).
  etl::IngestMode ingest_mode = etl::IngestMode::kStrict;
  /// When non-empty, ingest output is persisted to this archive directory
  /// (DESIGN.md §10). A warm archive already covering [start, start+span)
  /// for the same configuration is loaded instead of simulating, and the
  /// result fields that only the simulation produces (engine, files, acct,
  /// lariat_records, stats) stay empty. Otherwise the pipeline simulates,
  /// appends only the not-yet-archived days, and returns the archived data.
  std::string archive_dir;
  /// Serving-tier settings, used by serve() (DESIGN.md §13).
  service::ServiceConfig service;

  /// Throws InvalidArgument naming the offending field: span, load_factor
  /// and agent.interval must be positive, and the embedded ServiceConfig
  /// must pass its own validation (workers/queue_limit/deadline > 0).
  void validate() const;
};

struct PipelineResult {
  facility::ClusterSpec spec;
  std::vector<facility::AppSignature> catalogue;
  std::unique_ptr<facility::UserPopulation> population;
  std::vector<facility::MaintenanceWindow> maintenance;
  std::unique_ptr<facility::FacilityEngine> engine;
  std::vector<taccstats::RawFile> files;
  std::vector<accounting::AccountingRecord> acct;
  std::vector<lariat::LariatRecord> lariat_records;
  etl::IngestResult result;
  common::TimePoint start = 0;
  common::Duration span = 0;
  /// Where `result` came from ("live ingest" or an archive description);
  /// feed it to xdmod::DataContext::provenance so reports carry the source.
  std::string provenance;
  /// Archive accounting (zero when archive_dir is unset).
  std::size_t archive_partitions_loaded = 0;
  std::size_t archive_partitions_written = 0;
};

/// Run simulate -> collect -> ingest. Deterministic in the config.
[[nodiscard]] PipelineResult run_pipeline(const PipelineConfig& config);

/// A pipeline run plus a live query service over its data. The archive
/// handle (when archive_dir was set) is kept alive here because the service
/// subscribes to its on_append hook; member order guarantees the service is
/// torn down before the archive.
struct Serving {
  PipelineResult run;
  std::unique_ptr<archive::Archive> archive;  // null when archive_dir empty
  std::unique_ptr<service::Service> service;
};

/// run_pipeline() + stand up a query service over the result. With an
/// archive_dir the service binds to the archive (appends through the
/// returned handle republish and invalidate the result cache); without one
/// it serves the in-memory job summaries.
[[nodiscard]] Serving serve(const PipelineConfig& config);

}  // namespace supremm::pipeline
