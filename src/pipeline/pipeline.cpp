#include "pipeline/pipeline.h"

#include "archive/archive.h"
#include "common/error.h"
#include "common/strings.h"

namespace supremm::pipeline {

namespace {

/// Fingerprint of everything that determines the simulated data, except the
/// span (so an archive can be extended by re-running with a larger span) and
/// the thread count (ingest is bit-identical for any thread count).
std::string archive_context(const PipelineConfig& c) {
  return common::strprintf(
      "spec=%s nodes=%zu seed=%llu load=%.6f maint=%d interval=%lld mode=%s",
      c.spec.name.c_str(), c.spec.node_count, static_cast<unsigned long long>(c.seed),
      c.load_factor, c.with_maintenance ? 1 : 0, static_cast<long long>(c.agent.interval),
      c.ingest_mode == etl::IngestMode::kSalvage ? "salvage" : "strict");
}

}  // namespace

void PipelineConfig::validate() const {
  if (span <= 0) {
    throw common::InvalidArgument(common::strprintf(
        "PipelineConfig.span must be positive (got %lld)", static_cast<long long>(span)));
  }
  if (load_factor <= 0.0) {
    throw common::InvalidArgument(common::strprintf(
        "PipelineConfig.load_factor must be positive (got %g)", load_factor));
  }
  if (agent.interval <= 0) {
    throw common::InvalidArgument(common::strprintf(
        "PipelineConfig.agent.interval must be positive (got %lld)",
        static_cast<long long>(agent.interval)));
  }
  service.validate();
}

PipelineResult run_pipeline(const PipelineConfig& config) {
  config.validate();
  PipelineResult run;
  run.start = config.start;
  run.span = config.span;
  run.spec = config.spec;
  run.catalogue = facility::standard_catalogue();
  run.population = std::make_unique<facility::UserPopulation>(
      facility::UserPopulation::generate(run.spec, run.catalogue, config.seed));

  const std::string context = archive_context(config);
  if (!config.archive_dir.empty()) {
    const archive::Archive ar(config.archive_dir, config.threads);
    if (ar.exists()) {
      const auto& m = ar.manifest();
      if (m.context != context || m.start != config.start) {
        throw common::InvalidArgument("pipeline: archive " + config.archive_dir +
                                      " was written with a different configuration");
      }
      if (m.watermark > config.start + config.span) {
        throw common::InvalidArgument(
            "pipeline: archive " + config.archive_dir +
            " covers a longer span than requested; widen span or read it directly");
      }
      if (m.watermark == config.start + config.span) {
        // Warm archive: serve from storage, skip the simulation entirely.
        archive::LoadResult loaded = ar.load();
        run.result = std::move(loaded.result);
        run.archive_partitions_loaded = loaded.partitions_loaded;
        run.provenance = common::strprintf(
            "archive %s (cold load, %zu partitions, %zu quarantined)",
            config.archive_dir.c_str(), loaded.partitions_loaded, loaded.quarantined.size());
        return run;
      }
    }
  }

  facility::WorkloadConfig wl;
  wl.start = run.start;
  wl.span = run.span;
  wl.seed = config.seed;
  wl.load_factor = config.load_factor;
  auto requests = facility::generate_workload(run.spec, run.catalogue, *run.population, wl);
  if (config.with_maintenance) {
    run.maintenance = facility::standard_maintenance(run.start, run.span, config.seed);
  }
  auto execs = facility::Scheduler::run(run.spec, std::move(requests), run.maintenance);
  run.engine = std::make_unique<facility::FacilityEngine>(run.spec, std::move(execs),
                                                          run.maintenance, run.start,
                                                          run.start + run.span, config.seed);

  const auto outputs = taccstats::run_all_agents(*run.engine, config.agent, config.threads);
  for (const auto& o : outputs) {
    run.files.insert(run.files.end(), o.files.begin(), o.files.end());
  }
  run.acct = accounting::from_executions(run.spec, *run.population,
                                         run.engine->executions());
  run.lariat_records = lariat::from_executions(run.spec, run.catalogue, *run.population,
                                               run.engine->executions());

  etl::IngestConfig cfg;
  cfg.start = run.start;
  cfg.span = run.span;
  cfg.cluster = run.spec.name;
  cfg.threads = config.threads;
  cfg.bucket = config.agent.interval;
  cfg.min_job_seconds = config.agent.interval;
  cfg.mode = config.ingest_mode;
  if (!config.archive_dir.empty()) {
    // Append only the not-yet-archived days, then serve the result from the
    // archive so what callers analyze is exactly what was persisted.
    archive::Archive ar(config.archive_dir, config.threads);
    const archive::AppendStats st =
        ar.append(cfg, run.files, run.acct, run.lariat_records, run.catalogue,
                  etl::project_science_map(*run.population), context,
                  run.start + run.span);
    archive::LoadResult loaded = ar.load();
    run.result = std::move(loaded.result);
    run.archive_partitions_loaded = loaded.partitions_loaded;
    run.archive_partitions_written = st.partitions_written;
    run.provenance = common::strprintf(
        "archive %s (+%lld days ingested, %zu partitions written)",
        config.archive_dir.c_str(), static_cast<long long>(st.days_ingested),
        st.partitions_written);
  } else {
    const etl::IngestPipeline ingest(cfg);
    run.result = ingest.run(run.files, run.acct, run.lariat_records, run.catalogue,
                            etl::project_science_map(*run.population));
    run.provenance = "live ingest";
  }
  return run;
}

Serving serve(const PipelineConfig& config) {
  Serving s;
  s.run = run_pipeline(config);
  s.service = std::make_unique<service::Service>(config.service);
  if (!config.archive_dir.empty()) {
    s.archive = std::make_unique<archive::Archive>(config.archive_dir, config.threads);
    s.service->bind_archive(*s.archive);
  } else {
    s.service->publish_jobs(s.run.result.jobs, config.start + config.span);
  }
  return s;
}

}  // namespace supremm::pipeline
