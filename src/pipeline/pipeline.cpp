#include "pipeline/pipeline.h"

namespace supremm::pipeline {

PipelineResult run_pipeline(const PipelineConfig& config) {
  PipelineResult run;
  run.start = config.start;
  run.span = config.span;
  run.spec = config.spec;
  run.catalogue = facility::standard_catalogue();
  run.population = std::make_unique<facility::UserPopulation>(
      facility::UserPopulation::generate(run.spec, run.catalogue, config.seed));

  facility::WorkloadConfig wl;
  wl.start = run.start;
  wl.span = run.span;
  wl.seed = config.seed;
  wl.load_factor = config.load_factor;
  auto requests = facility::generate_workload(run.spec, run.catalogue, *run.population, wl);
  if (config.with_maintenance) {
    run.maintenance = facility::standard_maintenance(run.start, run.span, config.seed);
  }
  auto execs = facility::Scheduler::run(run.spec, std::move(requests), run.maintenance);
  run.engine = std::make_unique<facility::FacilityEngine>(run.spec, std::move(execs),
                                                          run.maintenance, run.start,
                                                          run.start + run.span, config.seed);

  const auto outputs = taccstats::run_all_agents(*run.engine, config.agent, config.threads);
  for (const auto& o : outputs) {
    run.files.insert(run.files.end(), o.files.begin(), o.files.end());
  }
  run.acct = accounting::from_executions(run.spec, *run.population,
                                         run.engine->executions());
  run.lariat_records = lariat::from_executions(run.spec, run.catalogue, *run.population,
                                               run.engine->executions());

  etl::IngestConfig cfg;
  cfg.start = run.start;
  cfg.span = run.span;
  cfg.cluster = run.spec.name;
  cfg.threads = config.threads;
  cfg.bucket = config.agent.interval;
  cfg.min_job_seconds = config.agent.interval;
  cfg.mode = config.ingest_mode;
  const etl::IngestPipeline ingest(cfg);
  run.result = ingest.run(run.files, run.acct, run.lariat_records, run.catalogue,
                          etl::project_science_map(*run.population));
  return run;
}

}  // namespace supremm::pipeline
