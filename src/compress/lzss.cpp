#include "compress/lzss.h"

#include <array>
#include <cstring>
#include <vector>

#include "common/error.h"

namespace supremm::compress {

namespace {

constexpr std::size_t kWindow = 4096;       // distance range 1..4096
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = kMinMatch + 15;  // 4-bit length field
constexpr char kMagic[4] = {'L', 'Z', 'S', '1'};

constexpr std::uint32_t hash3(const unsigned char* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) * 2654435761u ^
          static_cast<std::uint32_t>(p[1]) * 40503u ^ static_cast<std::uint32_t>(p[2])) &
         0x3fff;  // 16k buckets
}

void put_u32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t get_u32(std::string_view s, std::size_t pos) {
  return static_cast<std::uint8_t>(s[pos]) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(s[pos + 1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(s[pos + 2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(s[pos + 3])) << 24);
}

}  // namespace

std::string compress(std::string_view input) {
  std::string out;
  out.reserve(input.size() / 2 + 16);
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, static_cast<std::uint32_t>(input.size()));
  if (input.empty()) return out;

  const auto* data = reinterpret_cast<const unsigned char*>(input.data());
  const std::size_t n = input.size();

  // Hash-chain matcher: head[h] = most recent position with hash h,
  // chain[i % kWindow] = previous position with the same hash.
  std::vector<std::int64_t> head(16384, -1);
  std::vector<std::int64_t> chain(kWindow, -1);

  std::size_t flag_pos = 0;
  int flag_bit = 8;  // force a new flag byte at the first token
  auto begin_token = [&](bool is_match) {
    if (flag_bit == 8) {
      flag_pos = out.size();
      out.push_back('\0');
      flag_bit = 0;
    }
    if (is_match) out[flag_pos] = static_cast<char>(out[flag_pos] | (1 << flag_bit));
    ++flag_bit;
  };
  auto insert_pos = [&](std::size_t i) {
    if (i + kMinMatch > n) return;
    const std::uint32_t h = hash3(data + i);
    chain[i % kWindow] = head[h];
    head[h] = static_cast<std::int64_t>(i);
  };

  std::size_t i = 0;
  while (i < n) {
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + kMinMatch <= n) {
      std::int64_t cand = head[hash3(data + i)];
      int probes = 32;
      while (cand >= 0 && probes-- > 0) {
        const auto c = static_cast<std::size_t>(cand);
        if (i - c > kWindow) break;
        const std::size_t limit = std::min(kMaxMatch, n - i);
        std::size_t len = 0;
        while (len < limit && data[c + len] == data[i + len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
          if (len == kMaxMatch) break;
        }
        const std::int64_t next = chain[c % kWindow];
        // The chain slot may have been overwritten by a newer position.
        if (next >= cand) break;
        cand = next;
      }
    }

    if (best_len >= kMinMatch) {
      begin_token(true);
      const auto dist = static_cast<std::uint16_t>(best_dist - 1);       // 0..4095
      const auto len = static_cast<std::uint16_t>(best_len - kMinMatch); // 0..15
      const std::uint16_t word = static_cast<std::uint16_t>(dist << 4) | len;
      out.push_back(static_cast<char>(word & 0xff));
      out.push_back(static_cast<char>(word >> 8));
      for (std::size_t k = 0; k < best_len; ++k) insert_pos(i + k);
      i += best_len;
    } else {
      begin_token(false);
      out.push_back(static_cast<char>(data[i]));
      insert_pos(i);
      ++i;
    }
  }
  return out;
}

std::string decompress(std::string_view compressed) {
  if (compressed.size() < 8 || std::memcmp(compressed.data(), kMagic, 4) != 0) {
    throw common::ParseError("lzss: bad magic");
  }
  const std::uint32_t usize = get_u32(compressed, 4);
  std::string out;
  out.reserve(usize);

  std::size_t pos = 8;
  std::uint8_t flags = 0;
  int flag_bit = 8;
  while (out.size() < usize) {
    if (flag_bit == 8) {
      if (pos >= compressed.size()) throw common::ParseError("lzss: truncated flags");
      flags = static_cast<std::uint8_t>(compressed[pos++]);
      flag_bit = 0;
    }
    const bool is_match = (flags >> flag_bit) & 1;
    ++flag_bit;
    if (is_match) {
      if (pos + 2 > compressed.size()) throw common::ParseError("lzss: truncated match");
      const std::uint16_t word =
          static_cast<std::uint8_t>(compressed[pos]) |
          (static_cast<std::uint16_t>(static_cast<std::uint8_t>(compressed[pos + 1])) << 8);
      pos += 2;
      const std::size_t dist = static_cast<std::size_t>(word >> 4) + 1;
      const std::size_t len = static_cast<std::size_t>(word & 0xf) + kMinMatch;
      if (dist > out.size()) throw common::ParseError("lzss: distance beyond output");
      for (std::size_t k = 0; k < len; ++k) {
        out.push_back(out[out.size() - dist]);  // may self-overlap
      }
    } else {
      if (pos >= compressed.size()) throw common::ParseError("lzss: truncated literal");
      out.push_back(compressed[pos++]);
    }
  }
  if (out.size() != usize) throw common::ParseError("lzss: size mismatch");
  return out;
}

double compression_ratio(std::string_view input) {
  if (input.empty()) return 1.0;
  return static_cast<double>(compress(input).size()) / static_cast<double>(input.size());
}

}  // namespace supremm::compress
