#include "compress/lzss.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/error.h"
#include "common/simd.h"

namespace supremm::compress {

namespace {

constexpr std::size_t kWindow = 4096;       // distance range 1..4096
constexpr std::size_t kMinMatch = 3;
constexpr std::size_t kMaxMatch = kMinMatch + 15;  // 4-bit length field
constexpr char kMagic[4] = {'L', 'Z', 'S', '1'};
constexpr std::size_t kHeaderSize = 8;

constexpr std::uint32_t hash3(const unsigned char* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) * 2654435761u ^
          static_cast<std::uint32_t>(p[1]) * 40503u ^ static_cast<std::uint32_t>(p[2])) &
         0x3fff;  // 16k buckets
}

std::uint32_t get_u32(std::string_view s, std::size_t pos) {
  return static_cast<std::uint8_t>(s[pos]) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(s[pos + 1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(s[pos + 2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(s[pos + 3])) << 24);
}

}  // namespace

StreamCompressor::StreamCompressor()
    : head_(16384, -1), chain_(kWindow, -1) {
  out_.append(kMagic, sizeof(kMagic));
  out_.append(4, '\0');  // size field, patched in finish()
}

void StreamCompressor::append(std::string_view chunk) {
  if (finished_) throw common::InvalidArgument("lzss: append after finish");
  if (chunk.size() > 0xffffffffu - total_) {
    throw common::InvalidArgument("lzss: input exceeds 4 GiB format limit");
  }
  buf_.append(chunk);
  total_ += chunk.size();
  // Positions with a full kMaxMatch lookahead in the buffer encode exactly as
  // they would with the whole input in hand; the rest wait for more data.
  if (total_ >= kMaxMatch) encode_upto(total_ - kMaxMatch + 1);
  compact();
}

std::string StreamCompressor::finish() {
  if (finished_) throw common::InvalidArgument("lzss: finish after finish");
  finished_ = true;
  encode_upto(total_);
  const auto usize = static_cast<std::uint32_t>(total_);
  out_[4] = static_cast<char>(usize & 0xff);
  out_[5] = static_cast<char>((usize >> 8) & 0xff);
  out_[6] = static_cast<char>((usize >> 16) & 0xff);
  out_[7] = static_cast<char>((usize >> 24) & 0xff);
  buf_.clear();
  buf_.shrink_to_fit();
  sealed_ = out_.size();
  return std::move(out_);
}

SizeReport StreamCompressor::report() const noexcept {
  return SizeReport{total_, finished_ ? sealed_ : out_.size()};
}

void StreamCompressor::encode_upto(std::size_t stop) {
  // Identical token selection to the historical one-shot encoder: hash-chain
  // matcher with head_[h] = most recent absolute position with hash h and
  // chain_[i % kWindow] = previous position with the same hash. buf_[i -
  // base_] is absolute byte i; compact() guarantees base_ <= pos_ - kWindow.
  const auto* data = reinterpret_cast<const unsigned char*>(buf_.data());
  const std::size_t base = base_;
  const std::size_t n = total_;
  auto at = [&](std::size_t abs) { return data + (abs - base); };

  auto begin_token = [&](bool is_match) {
    if (flag_bit_ == 8) {
      flag_pos_ = out_.size();
      out_.push_back('\0');
      flag_bit_ = 0;
    }
    if (is_match) out_[flag_pos_] = static_cast<char>(out_[flag_pos_] | (1 << flag_bit_));
    ++flag_bit_;
  };
  // Positions enter the dictionary lazily, right before the next search. A
  // position needs kMinMatch bytes of lookahead to hash; deferring the check
  // to the latest possible moment means a position that sits too close to the
  // end of one chunk still gets inserted once the next chunk arrives, so the
  // dictionary (and hence the token stream) is identical to a one-shot pass.
  auto insert_before = [&](std::size_t upto) {
    const std::size_t lim =
        n >= kMinMatch ? std::min(upto, n - kMinMatch + 1) : std::size_t{0};
    for (; inserted_ < lim; ++inserted_) {
      const std::uint32_t h = hash3(at(inserted_));
      chain_[inserted_ % kWindow] = head_[h];
      head_[h] = static_cast<std::int64_t>(inserted_);
    }
  };

  while (pos_ < stop) {
    const std::size_t i = pos_;
    insert_before(i);
    std::size_t best_len = 0;
    std::size_t best_dist = 0;
    if (i + kMinMatch <= n) {
      std::int64_t cand = head_[hash3(at(i))];
      int probes = 32;
      // Away from the stream tail every candidate comparison has a full
      // 16-byte lookahead, so one cmpeq+movemask finds the first mismatch
      // (kMaxMatch is 18 — at most two extension bytes follow). The tail
      // keeps the byte loop; both produce the exact prefix length, so the
      // token stream is bit-identical across ISA tiers.
      const bool wide = i + 16 <= n;
      const std::size_t limit = std::min(kMaxMatch, n - i);
      while (cand >= 0 && probes-- > 0) {
        const auto c = static_cast<std::size_t>(cand);
        if (i - c > kWindow) break;
        const std::int64_t next = chain_[c % kWindow];
        // Candidates arrive newest-first; pulling the older one's bytes in
        // early hides the dependent-load latency of the chain walk.
        if (next >= 0 && static_cast<std::size_t>(next) >= base) {
          __builtin_prefetch(data + (static_cast<std::size_t>(next) - base));
        }
        std::size_t len = 0;
        if (wide) {
          len = common::simd::match_length(at(c), at(i), limit);
        } else {
          while (len < limit && *(at(c) + len) == *(at(i) + len)) ++len;
        }
        if (len > best_len) {
          best_len = len;
          best_dist = i - c;
          if (len == kMaxMatch) break;
        }
        // The chain slot may have been overwritten by a newer position.
        if (next >= cand) break;
        cand = next;
      }
    }

    if (best_len >= kMinMatch) {
      begin_token(true);
      const auto dist = static_cast<std::uint16_t>(best_dist - 1);        // 0..4095
      const auto len = static_cast<std::uint16_t>(best_len - kMinMatch);  // 0..15
      const std::uint16_t word = static_cast<std::uint16_t>(dist << 4) | len;
      out_.push_back(static_cast<char>(word & 0xff));
      out_.push_back(static_cast<char>(word >> 8));
      pos_ += best_len;
    } else {
      begin_token(false);
      out_.push_back(static_cast<char>(*at(i)));
      ++pos_;
    }
  }
}

void StreamCompressor::compact() {
  // Match candidates reach back at most kWindow bytes from pos_; older input
  // can be dropped. Only compact once a few windows have accumulated so the
  // erase cost amortises.
  const std::size_t keep_from = pos_ > kWindow ? pos_ - kWindow : 0;
  if (keep_from > base_ + 4 * kWindow) {
    buf_.erase(0, keep_from - base_);
    base_ = keep_from;
  }
}

void StreamDecompressor::append(std::string_view chunk) {
  if (done()) return;  // trailing bytes past the sealed stream are ignored
  pending_.append(chunk);
  if (!header_ok_) {
    if (pending_.size() >= 4 && std::memcmp(pending_.data(), kMagic, 4) != 0) {
      throw common::ParseError("lzss: bad magic");
    }
    if (pending_.size() < kHeaderSize) return;
    raw_size_ = get_u32(pending_, 4);
    pending_.erase(0, kHeaderSize);
    header_ok_ = true;
  }

  std::size_t pos = 0;
  while (produced_ < raw_size_) {
    if (flag_bit_ == 8) {
      if (pos >= pending_.size()) break;
      flags_ = static_cast<std::uint8_t>(pending_[pos++]);
      flag_bit_ = 0;
    }
    const bool is_match = (flags_ >> flag_bit_) & 1;
    if (is_match) {
      if (pos + 2 > pending_.size()) break;
      const std::uint16_t word =
          static_cast<std::uint8_t>(pending_[pos]) |
          (static_cast<std::uint16_t>(static_cast<std::uint8_t>(pending_[pos + 1])) << 8);
      pos += 2;
      const std::size_t dist = static_cast<std::size_t>(word >> 4) + 1;
      const std::size_t len = static_cast<std::size_t>(word & 0xf) + kMinMatch;
      if (dist > produced_) throw common::ParseError("lzss: distance beyond output");
      for (std::size_t k = 0; k < len; ++k) {
        emit(window_[window_.size() - dist]);  // may self-overlap
      }
      if (produced_ > raw_size_) throw common::ParseError("lzss: size mismatch");
    } else {
      if (pos >= pending_.size()) break;
      emit(pending_[pos++]);
    }
    ++flag_bit_;
  }
  pending_.erase(0, pos);
  if (done()) {
    pending_.clear();
    pending_.shrink_to_fit();
  }
}

std::string StreamDecompressor::take() { return std::exchange(out_, std::string()); }

void StreamDecompressor::emit(char c) {
  out_.push_back(c);
  window_.push_back(c);
  ++produced_;
  if (window_.size() > 2 * kWindow) window_.erase(0, window_.size() - kWindow);
}

std::string compress(std::string_view input) {
  StreamCompressor c;
  c.append(input);
  return c.finish();
}

std::string decompress(std::string_view compressed) {
  if (compressed.size() < kHeaderSize || std::memcmp(compressed.data(), kMagic, 4) != 0) {
    throw common::ParseError("lzss: bad magic");
  }
  StreamDecompressor d;
  d.append(compressed);
  if (!d.done()) throw common::ParseError("lzss: truncated stream");
  return d.take();
}

double compression_ratio(std::string_view input) {
  if (input.empty()) return 1.0;
  StreamCompressor c;
  c.append(input);
  return SizeReport{input.size(), c.finish().size()}.ratio();
}

}  // namespace supremm::compress
