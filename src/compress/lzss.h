// LZSS compression for raw TACC_Stats archives and the columnar job archive.
//
// Paper §4.1: "TACC_Stats generates a raw data file of 0.5 MB per node per
// day and collectively 60 GB (uncompressed) or 20 GB (compressed) for the
// entire cluster per month" - a ~3x ratio from gzip on the text format. This
// module provides a self-contained LZ77/LZSS codec (hash-chained matcher,
// byte-aligned token stream) so archived node-days and warehouse partitions
// can be stored compressed and the volume claim can be measured without
// external dependencies.
//
// Format: blocks of tokens preceded by a flag byte (8 tokens per flag, LSB
// first; bit set = match). Literal = 1 raw byte. Match = 2 bytes:
// 12-bit distance-1 | 4-bit length-kMinMatch, window 4 KiB, lengths 3..18.
// The stream starts with "LZS1" + uncompressed size (u32 LE).
//
// Two interfaces share the codec: the one-shot compress()/decompress()
// helpers, and the streaming StreamCompressor/StreamDecompressor pair that
// accept input in arbitrary chunks while holding only the 4 KiB match window
// (plus bounded working tails) in memory - so callers encoding large columns
// or raw archives never need a whole-buffer copy. Both producers emit the
// identical stream format and interoperate freely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace supremm::compress {

/// Exact byte accounting for one compressed stream.
struct SizeReport {
  std::size_t raw = 0;         // uncompressed bytes in
  std::size_t compressed = 0;  // exact stream bytes out (header included)

  /// compressed / raw; 1.0 for an empty input.
  [[nodiscard]] double ratio() const noexcept {
    return raw == 0 ? 1.0 : static_cast<double>(compressed) / static_cast<double>(raw);
  }
};

/// Incremental LZSS encoder. Feed input with append() in any chunking;
/// finish() seals the stream. Match state (window, hash chains) carries
/// across chunks, so the output is identical regardless of how the input was
/// split - append(a); append(b) produces the same bytes as append(a+b).
class StreamCompressor {
 public:
  StreamCompressor();

  /// Compress another chunk of input. Throws InvalidArgument after finish()
  /// or when the total input would exceed the format's 4 GiB size field.
  void append(std::string_view chunk);

  /// Flush the deferred tail, patch the size header, and return the complete
  /// compressed stream. The compressor cannot be reused afterwards.
  [[nodiscard]] std::string finish();

  /// Exact sizes so far (compressed includes the 8-byte header; until
  /// finish(), up to 17 tail bytes are still pending encode). After finish()
  /// this reports the exact size of the sealed stream.
  [[nodiscard]] SizeReport report() const noexcept;

 private:
  void encode_upto(std::size_t stop);  // encode positions < stop (absolute)
  void compact();

  std::string out_;
  std::string buf_;            // input tail; buf_[i] is absolute byte base_ + i
  std::size_t base_ = 0;       // absolute position of buf_[0]
  std::size_t pos_ = 0;        // next absolute position to encode
  std::size_t inserted_ = 0;   // next absolute position to enter the dictionary
  std::size_t total_ = 0;      // absolute input size so far
  std::size_t sealed_ = 0;     // final stream size, recorded by finish()
  std::vector<std::int64_t> head_;
  std::vector<std::int64_t> chain_;
  std::size_t flag_pos_ = 0;
  int flag_bit_ = 8;
  bool finished_ = false;
};

/// Incremental LZSS decoder. Feed compressed bytes with append() in any
/// chunking; decoded output accumulates and is drained with take(), while
/// only the 4 KiB back-reference window is retained internally.
class StreamDecompressor {
 public:
  /// Decode another chunk of compressed input. Bytes past the end of the
  /// stream are ignored. Throws ParseError on malformed input.
  void append(std::string_view chunk);

  /// True once the whole stream (per its size header) has been decoded.
  [[nodiscard]] bool done() const noexcept { return header_ok_ && produced_ == raw_size_; }

  /// Decoded bytes produced since the last take().
  [[nodiscard]] std::string take();

  /// Uncompressed size from the stream header (0 until the header arrives).
  [[nodiscard]] std::size_t raw_size() const noexcept { return raw_size_; }

 private:
  void emit(char c);

  std::string pending_;  // unconsumed compressed bytes (bounded: < 1 token)
  std::string out_;      // decoded, not yet taken
  std::string window_;   // last <= 4096 decoded bytes
  std::size_t raw_size_ = 0;
  std::size_t produced_ = 0;
  bool header_ok_ = false;
  std::uint8_t flags_ = 0;
  int flag_bit_ = 8;
};

/// Compress `input`; output is always decodable by decompress(). Worst case
/// grows the input by 1/8 + 9 bytes.
[[nodiscard]] std::string compress(std::string_view input);

/// Decompress a stream produced by compress(); throws ParseError on
/// malformed input.
[[nodiscard]] std::string decompress(std::string_view compressed);

/// compressed_size / uncompressed_size for the given input (exact: runs the
/// encoder and measures the stream it produces).
[[nodiscard]] double compression_ratio(std::string_view input);

}  // namespace supremm::compress
