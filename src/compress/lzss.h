// LZSS compression for raw TACC_Stats archives.
//
// Paper §4.1: "TACC_Stats generates a raw data file of 0.5 MB per node per
// day and collectively 60 GB (uncompressed) or 20 GB (compressed) for the
// entire cluster per month" - a ~3x ratio from gzip on the text format. This
// module provides a self-contained LZ77/LZSS codec (hash-chained matcher,
// byte-aligned token stream) so archived node-days can be stored compressed
// and the volume claim can be measured without external dependencies.
//
// Format: blocks of tokens preceded by a flag byte (8 tokens per flag, LSB
// first; bit set = match). Literal = 1 raw byte. Match = 2 bytes:
// 12-bit distance-1 | 4-bit length-kMinMatch, window 4 KiB, lengths 3..18.
// The stream starts with "LZS1" + uncompressed size (u32 LE).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace supremm::compress {

/// Compress `input`; output is always decodable by decompress(). Worst case
/// grows the input by 1/8 + 9 bytes.
[[nodiscard]] std::string compress(std::string_view input);

/// Decompress a stream produced by compress(); throws ParseError on
/// malformed input.
[[nodiscard]] std::string decompress(std::string_view compressed);

/// compressed_size / uncompressed_size for the given input.
[[nodiscard]] double compression_ratio(std::string_view input);

}  // namespace supremm::compress
