// Per-shard query executor: one shard's slice of the jobs realm plus the
// engine that answers compiled QuerySpecs with day-level partial aggregates
// (DESIGN.md §17).
//
// A shard is the embedded warehouse in miniature: it owns its jobs table
// (augmented and zone-indexed like Service::publish_jobs does), optionally
// materializes its own RollupSet, and answers the same request language —
// but it stops at the partial-aggregate boundary (warehouse/partial.h)
// instead of folding to a final table, because the coordinator owns the
// cross-shard fold. When its RollupSet subsumes a query, the shard serves
// the partial straight from level-0 (day) rollup cells: a day cell IS the
// micro-cell of the raw contract, so the rollup-served partial is bitwise
// the partial a raw scan would have produced.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "federation/catalog.h"
#include "federation/wire.h"
#include "service/request.h"
#include "warehouse/rollup.h"
#include "warehouse/table.h"

namespace supremm::federation {

class ShardExecutor {
 public:
  struct Options {
    bool rollups = true;            // materialize a RollupSet for this shard
    std::string rank_column = "job_id";
  };

  /// Takes ownership of the shard's slice of the jobs table (raw or already
  /// augmented); augments, zone-indexes and (optionally) rolls it up.
  ShardExecutor(std::string name, warehouse::Table jobs, Options opts);
  ShardExecutor(std::string name, warehouse::Table jobs);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const warehouse::Table& jobs() const noexcept { return jobs_; }
  [[nodiscard]] bool has_rollups() const noexcept { return rollups_ != nullptr; }

  /// Catalog entry derived from the shard's rows: its cluster dictionary
  /// and inclusive end-day bounds. An empty shard gets an empty day range
  /// (day_lo > day_hi), so catalogs prune it from every bounded query.
  [[nodiscard]] ShardInfo info() const;

  /// Execute a compiled spec against this shard, returning the day-level
  /// partial. deadline_ms == 0 means no deadline. Throws common::Cancelled
  /// when the deadline trips, InvalidArgument / NotFoundError for a spec
  /// this shard cannot serve (wrong table, unknown column).
  [[nodiscard]] wire::PartialMsg execute(const service::QuerySpec& spec,
                                         std::uint32_t deadline_ms,
                                         const std::string& rank_column) const;

  /// The shard daemon's request handler: a hello + query conversation in,
  /// a hello-ack + partial (or error) conversation out. Never throws — every
  /// failure, including protocol version mismatch and malformed frames,
  /// becomes a well-formed Error frame with the sourced message.
  [[nodiscard]] std::string serve(std::string_view request) const;

 private:
  [[nodiscard]] wire::PartialMsg rollup_partial(const warehouse::rollup::Plan& plan) const;

  std::string name_;
  warehouse::Table jobs_;
  std::unique_ptr<warehouse::rollup::RollupSet> rollups_;
  Options opts_;
};

}  // namespace supremm::federation
