#include "federation/executor.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <map>
#include <vector>

#include "archive/partition.h"
#include "common/cancel.h"
#include "common/time.h"
#include "common/error.h"
#include "warehouse/aggstate.h"

namespace supremm::federation {

namespace {

// The compiled request terms, re-expressed for the rollup subsumption
// checker — same lossless mapping the service uses, so a query that
// subsumes at the coordinator subsumes at every shard.
warehouse::rollup::QueryInput rollup_input(const service::QuerySpec& spec) {
  warehouse::rollup::QueryInput in;
  in.where.reserve(spec.where.size());
  for (const service::Term& t : spec.where) {
    warehouse::rollup::PredInput p;
    switch (t.op) {
      case service::TermOp::kEq:
        p.op = warehouse::rollup::PredInput::Op::kEq;
        break;
      case service::TermOp::kGe:
        p.op = warehouse::rollup::PredInput::Op::kGe;
        break;
      case service::TermOp::kLe:
        p.op = warehouse::rollup::PredInput::Op::kLe;
        break;
      case service::TermOp::kBetween:
        p.op = warehouse::rollup::PredInput::Op::kBetween;
        break;
    }
    p.column = t.column;
    p.value = t.value;
    p.lo = t.lo;
    p.hi = t.hi;
    in.where.push_back(std::move(p));
  }
  in.group_by = spec.group_by;
  in.aggs = spec.aggs;
  return in;
}

const char* const kDims[] = {"user", "app", "cluster"};

struct BucketKey {
  const char* name;
  std::int64_t grain;
};

constexpr BucketKey kBucketKeys[] = {
    {"day", 1}, {"week", 7}, {"month", 28}, {"quarter", 84}};

const BucketKey* bucket_key(const std::string& name) {
  for (const auto& b : kBucketKeys) {
    if (name == b.name) return &b;
  }
  return nullptr;
}

}  // namespace

ShardExecutor::ShardExecutor(std::string name, warehouse::Table jobs, Options opts)
    : name_(std::move(name)), jobs_(std::move(jobs)), opts_(std::move(opts)) {
  if (jobs_.time_partition().empty()) {
    warehouse::rollup::augment_jobs_table(jobs_);
  }
  if (opts_.rollups) {
    rollups_ = std::make_unique<warehouse::rollup::RollupSet>(
        warehouse::rollup::build_from_table(jobs_));
  }
  jobs_.rebuild_zone_index(archive::kDefaultChunkRows);
}

ShardExecutor::ShardExecutor(std::string name, warehouse::Table jobs)
    : ShardExecutor(std::move(name), std::move(jobs), Options{}) {}

ShardInfo ShardExecutor::info() const {
  ShardInfo info;
  info.name = name_;
  const auto dict = jobs_.col("cluster").dict();
  info.clusters.assign(dict.begin(), dict.end());
  const auto ends = jobs_.col("end").int64s();
  if (ends.empty()) {
    info.day_lo = 0;
    info.day_hi = -1;  // empty range: bounded queries prune this shard
    return info;
  }
  std::int64_t lo = std::numeric_limits<std::int64_t>::max();
  std::int64_t hi = std::numeric_limits<std::int64_t>::min();
  for (const std::int64_t e : ends) {
    lo = std::min(lo, e);
    hi = std::max(hi, e);
  }
  info.day_lo = warehouse::end_day_index(lo);
  info.day_hi = warehouse::end_day_index(hi);
  return info;
}

wire::PartialMsg ShardExecutor::rollup_partial(const warehouse::rollup::Plan& plan) const {
  // Serve the partial from level-0 (day) cells, whatever level the plan
  // resolved: the coordinator folds day-level states, and a day cell is
  // exactly the raw contract's micro-cell (rollup::serve reconstructs the
  // same states; PR 8's differential suite pins that equivalence).
  const warehouse::Table& t = rollups_->level(0);
  const std::size_t naggs = plan.aggs.size();

  wire::PartialMsg msg;
  msg.rollup_served = true;
  auto& p = msg.partial;
  p.naggs = naggs;
  for (const std::string& k : plan.group_by) {
    p.key_schema.emplace_back(k, bucket_key(k) != nullptr ? warehouse::ColType::kInt64
                                                          : warehouse::ColType::kString);
  }

  // Dim equality literals resolve to this shard's dictionary codes; a miss
  // selects nothing (rows_scanned 0, the documented rollup accounting).
  bool empty = false;
  std::vector<std::pair<const std::int32_t*, std::int32_t>> dim_tests;
  for (const auto& [col, val] : plan.dim_eq) {
    const auto code = t.col(col).find_code(val);
    if (!code) {
      empty = true;
      break;
    }
    dim_tests.emplace_back(t.col(col).codes().data(), *code);
  }

  const std::int64_t* bucket = t.col("bucket").int64s().data();
  const std::int64_t* rows_col = t.col("rows").int64s().data();
  const std::int64_t* min_jid = t.col("min_jobid").int64s().data();
  const double* node_hours_sum = t.col("node_hours_sum").doubles().data();

  struct MetricCols {
    const double* sum = nullptr;
    const double* mn = nullptr;
    const double* mx = nullptr;
    const double* wv = nullptr;
  };
  std::vector<MetricCols> agg_cols(naggs);
  for (std::size_t a = 0; a < naggs; ++a) {
    const warehouse::AggSpec& spec = plan.aggs[a];
    if (spec.kind == warehouse::AggKind::kCount) continue;
    agg_cols[a].sum = t.col(spec.column + "_sum").doubles().data();
    agg_cols[a].mn = t.col(spec.column + "_min").doubles().data();
    agg_cols[a].mx = t.col(spec.column + "_max").doubles().data();
    agg_cols[a].wv = t.col(spec.column + "_wv").doubles().data();
  }

  struct KeyView {
    const warehouse::Column* col = nullptr;  // dim (codes + decode)
    std::int64_t grain = 0;                  // bucket key (days)
  };
  std::vector<KeyView> key_views;
  for (const std::string& k : plan.group_by) {
    KeyView v;
    if (const BucketKey* b = bucket_key(k)) {
      v.grain = b->grain;
    } else {
      v.col = &t.col(k);
    }
    key_views.push_back(v);
  }
  std::vector<const warehouse::Column*> extra_cols;
  for (const char* d : kDims) {
    if (std::find(plan.group_by.begin(), plan.group_by.end(), d) == plan.group_by.end()) {
      extra_cols.push_back(&t.col(d));
    }
  }

  // Select day cells and bucket them into tuples. Table order is (bucket
  // ASC, min_jobid ASC), so each tuple's day list comes out ascending.
  using Key = std::vector<std::int64_t>;
  std::map<Key, std::size_t> tuple_lookup;
  std::size_t selected = 0;
  const std::size_t nrows = empty ? 0 : t.rows();
  std::vector<warehouse::AggState> cell_states(naggs);
  for (std::size_t r = 0; r < nrows; ++r) {
    const std::int64_t b = bucket[r];
    if (plan.has_lo && b < plan.d_lo) continue;
    if (plan.has_hi && b > plan.d_hi) continue;
    bool pass = true;
    for (const auto& [codes, code] : dim_tests) {
      if (codes[r] != code) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    ++selected;
    Key key;
    key.reserve(key_views.size() + extra_cols.size());
    for (const KeyView& v : key_views) {
      if (v.col != nullptr) {
        key.push_back(v.col->codes().data()[r]);
      } else {
        key.push_back(warehouse::floor_div(b, v.grain) * v.grain * common::kDay);
      }
    }
    for (const warehouse::Column* c : extra_cols) key.push_back(c->codes().data()[r]);

    const auto [it, inserted] = tuple_lookup.emplace(std::move(key), p.tuples.size());
    if (inserted) {
      warehouse::partial::TuplePartial tp;
      tp.group.reserve(key_views.size());
      for (std::size_t k = 0; k < key_views.size(); ++k) {
        const KeyView& v = key_views[k];
        warehouse::partial::KeyValue kv;
        if (v.col != nullptr) {
          kv.type = warehouse::ColType::kString;
          kv.str = std::string(v.col->decode(v.col->codes().data()[r]));
        } else {
          kv.type = warehouse::ColType::kInt64;
          kv.i64 = warehouse::floor_div(b, v.grain) * v.grain * common::kDay;
        }
        tp.group.push_back(std::move(kv));
      }
      tp.extra.reserve(extra_cols.size());
      for (const warehouse::Column* c : extra_cols) {
        warehouse::partial::KeyValue kv;
        kv.type = warehouse::ColType::kString;
        kv.str = std::string(c->decode(c->codes().data()[r]));
        tp.extra.push_back(std::move(kv));
      }
      tp.rank = min_jid[r];
      p.tuples.push_back(std::move(tp));
    }
    warehouse::partial::TuplePartial& tp = p.tuples[it->second];
    tp.rank = std::min(tp.rank, min_jid[r]);
    tp.days.push_back(b);
    for (std::size_t a = 0; a < naggs; ++a) {
      warehouse::AggState& s = cell_states[a];
      s = warehouse::AggState{};
      s.n = rows_col[r];
      if (plan.aggs[a].kind != warehouse::AggKind::kCount) {
        s.sum = agg_cols[a].sum[r];
        s.mn = agg_cols[a].mn[r];
        s.mx = agg_cols[a].mx[r];
        if (plan.aggs[a].kind == warehouse::AggKind::kWeightedMean) {
          s.wsum = node_hours_sum[r];
          s.wvsum = agg_cols[a].wv[r];
        }
      }
      tp.states.push_back(s);
    }
  }

  p.stats.rows_scanned = nrows;  // 0 on the dim-literal dictionary miss
  p.stats.rows_matched = selected;
  return msg;
}

wire::PartialMsg ShardExecutor::execute(const service::QuerySpec& spec,
                                        std::uint32_t deadline_ms,
                                        const std::string& rank_column) const {
  if (spec.table != jobs_.name()) {
    throw common::InvalidArgument("shard " + name_ + " does not host table '" + spec.table +
                                  "'");
  }
  common::CancelToken token;
  if (deadline_ms > 0) {
    token.set_deadline(common::CancelToken::Clock::now() +
                       std::chrono::milliseconds(deadline_ms));
  }

  if (rollups_ != nullptr && warehouse::rollup::enabled()) {
    if (const auto plan = warehouse::rollup::subsume(rollup_input(spec))) {
      return rollup_partial(*plan);
    }
  }

  warehouse::Query q = service::compile(spec, jobs_);
  q.cancel_token(&token);
  wire::PartialMsg msg;
  msg.rollup_served = false;
  msg.partial = q.run_partial(rank_column);
  return msg;
}

std::string ShardExecutor::serve(std::string_view request) const {
  bool timeout = false;
  std::string error;
  try {
    std::size_t offset = 0;
    const wire::Frame hello = wire::read_frame(request, offset);
    if (hello.type != wire::MsgType::kHello) {
      throw common::ParseError("wire: expected hello frame, got type " +
                               std::to_string(static_cast<int>(hello.type)));
    }
    (void)wire::unpack_hello(hello.payload);
    const wire::Frame query = wire::read_frame(request, offset);
    if (query.type != wire::MsgType::kQuery) {
      throw common::ParseError("wire: expected query frame, got type " +
                               std::to_string(static_cast<int>(query.type)));
    }
    if (offset != request.size()) {
      throw common::ParseError("wire: trailing bytes after query conversation");
    }
    const wire::QueryMsg msg = wire::unpack_query(query.payload);
    const wire::PartialMsg out = execute(msg.spec, msg.deadline_ms, msg.rank_column);
    return wire::frame(wire::MsgType::kHelloAck, wire::pack_hello_ack({name_})) +
           wire::frame(wire::MsgType::kPartial, wire::pack_partial(out));
  } catch (const common::Cancelled& e) {
    timeout = true;
    error = e.what();
  } catch (const std::exception& e) {
    error = e.what();
  }
  return wire::frame(wire::MsgType::kHelloAck, wire::pack_hello_ack({name_})) +
         wire::frame(wire::MsgType::kError, wire::pack_error({error, timeout}));
}

}  // namespace supremm::federation
