#include "federation/catalog.h"

#include <algorithm>
#include <cmath>

#include "warehouse/aggstate.h"

namespace supremm::federation {

namespace {

constexpr double kDaySeconds = 86400.0;

struct BucketCol {
  const char* name;
  std::int64_t grain;  // days per bucket
};

constexpr BucketCol kBucketCols[] = {
    {"day", 1}, {"week", 7}, {"month", 28}, {"quarter", 84}};

const BucketCol* bucket_col(const std::string& name) {
  for (const auto& b : kBucketCols) {
    if (name == b.name) return &b;
  }
  return nullptr;
}

/// Conservative day-index floor of a seconds value (rounds down, then one
/// more day of slack for the double → int trip).
std::int64_t day_floor(double seconds) {
  const double d = std::floor(seconds / kDaySeconds);
  constexpr double kCap = 4.0e15;  // far past any simulated timeline
  return static_cast<std::int64_t>(std::clamp(d, -kCap, kCap)) - 1;
}

std::int64_t day_ceil(double seconds) {
  const double d = std::ceil(seconds / kDaySeconds);
  constexpr double kCap = 4.0e15;
  return static_cast<std::int64_t>(std::clamp(d, -kCap, kCap)) + 1;
}

}  // namespace

std::vector<std::size_t> Catalog::prune(const service::QuerySpec& spec) const {
  // Derive the query's conservative day window and required clusters from
  // the WHERE conjuncts. Conjunct semantics: every term must hold, so
  // windows intersect and any cluster equality is mandatory.
  std::int64_t q_lo = std::numeric_limits<std::int64_t>::min() / 2;
  std::int64_t q_hi = std::numeric_limits<std::int64_t>::max() / 2;
  std::vector<const std::string*> cluster_eq;

  for (const auto& t : spec.where) {
    if (t.op == service::TermOp::kEq) {
      if (t.column == "cluster") cluster_eq.push_back(&t.value);
      continue;
    }
    const bool has_lo = t.op == service::TermOp::kGe || t.op == service::TermOp::kBetween;
    const bool has_hi = t.op == service::TermOp::kLe || t.op == service::TermOp::kBetween;
    if ((has_lo && std::isnan(t.lo)) || (has_hi && std::isnan(t.hi))) continue;
    if (t.column == "end") {
      // end_day_index is monotone in end, so end >= lo bounds the day from
      // below and end <= hi from above.
      if (has_lo) q_lo = std::max(q_lo, day_floor(t.lo));
      if (has_hi) q_hi = std::min(q_hi, day_ceil(t.hi));
    } else if (const BucketCol* b = bucket_col(t.column)) {
      // Bucket-start seconds: start <= day*86400 and start >= (day-g+1)*86400,
      // so start >= lo gives day >= lo/86400 - g and start <= hi gives
      // day <= hi/86400 + g (slack absorbs the bucket alignment).
      if (has_lo) q_lo = std::max(q_lo, day_floor(t.lo) - b->grain);
      if (has_hi) q_hi = std::min(q_hi, day_ceil(t.hi) + b->grain);
    }
  }

  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const ShardInfo& s = shards_[i];
    if (s.day_hi < q_lo || s.day_lo > q_hi) continue;
    bool cluster_ok = true;
    for (const std::string* want : cluster_eq) {
      if (!s.clusters.empty() &&
          std::find(s.clusters.begin(), s.clusters.end(), *want) == s.clusters.end()) {
        cluster_ok = false;
        break;
      }
    }
    if (cluster_ok) keep.push_back(i);
  }
  return keep;
}

}  // namespace supremm::federation
