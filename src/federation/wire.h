// Versioned binary shard protocol (DESIGN.md §17), slurm pack.h style:
// little scalar put/get primitives composed into length-prefixed, CRC-framed
// messages with an explicit protocol version in every frame header.
//
// Frame layout (all integers little-endian, fixed width):
//
//   u32 magic      "SUPF" (0x53555046)
//   u16 version    kProtocolVersion; a peer speaking another version is
//                  rejected before any payload is interpreted
//   u16 type       MsgType
//   u32 len        payload byte count (capped at kMaxPayload)
//   u8  payload[len]
//   u32 crc        CRC-32 over header + payload
//
// One shard conversation is two concatenated frames each way:
//
//   client → shard   Hello{client}, Query{spec, deadline_ms, rank_column}
//   shard  → client  HelloAck{shard}, Partial{...}  — or Error{message}
//
// Every decode path is bounds-checked and enum-validated: truncated input,
// forged CRCs, implausible counts and out-of-range enums all surface as
// common::ParseError ("wire: ..."), never as a crash or an over-read. Floats
// travel as raw IEEE bit patterns (u64), so NaN payloads and -0.0 survive
// the trip exactly — a requirement of the bit-identical merge contract.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "service/request.h"
#include "warehouse/partial.h"

namespace supremm::federation::wire {

inline constexpr std::uint32_t kMagic = 0x53555046u;  // "SUPF"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::uint32_t kMaxPayload = 1u << 28;
inline constexpr std::size_t kFrameHeaderBytes = 12;  // magic+version+type+len

enum class MsgType : std::uint16_t {
  kHello = 1,
  kHelloAck = 2,
  kQuery = 3,
  kPartial = 4,
  kError = 5,
};

/// pack.h-style append-only scalar packer.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void i64(std::int64_t v) { raw(&v, sizeof(v)); }
  void f64(double v);  // exact bit pattern
  void str(std::string_view s);

  [[nodiscard]] const std::string& data() const noexcept { return buf_; }
  [[nodiscard]] std::string take() { return std::move(buf_); }

 private:
  void raw(const void* p, std::size_t n);
  std::string buf_;
};

/// Bounds-checked scalar unpacker; every getter throws common::ParseError
/// ("wire: truncated message") rather than reading past the end.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint16_t u16();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64();
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();

  /// Reject a collection count that could not possibly fit in the remaining
  /// bytes (each element needs >= min_bytes) before anything allocates.
  void check_count(std::uint64_t count, std::size_t min_bytes) const;

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  /// Trailing garbage after a complete message is a framing error.
  void expect_done() const;

 private:
  void need(std::size_t n) const;
  std::string_view data_;
  std::size_t pos_ = 0;
};

// --- messages --------------------------------------------------------------

struct Hello {
  std::string client;
};

struct HelloAck {
  std::string shard;
};

struct QueryMsg {
  service::QuerySpec spec;
  std::uint32_t deadline_ms = 0;  // 0 = no deadline
  std::string rank_column;        // "" = first-seen tuple order (single shard)
};

struct PartialMsg {
  bool rollup_served = false;  // served from the shard's RollupSet
  warehouse::partial::Partial partial;
};

struct ErrorMsg {
  std::string message;
  /// The shard hit its deadline (maps to degraded kPartial accounting at the
  /// coordinator, distinct from a hard error).
  bool timeout = false;
};

[[nodiscard]] std::string pack_hello(const Hello& m);
[[nodiscard]] std::string pack_hello_ack(const HelloAck& m);
[[nodiscard]] std::string pack_query(const QueryMsg& m);
[[nodiscard]] std::string pack_partial(const PartialMsg& m);
[[nodiscard]] std::string pack_error(const ErrorMsg& m);

[[nodiscard]] Hello unpack_hello(std::string_view payload);
[[nodiscard]] HelloAck unpack_hello_ack(std::string_view payload);
[[nodiscard]] QueryMsg unpack_query(std::string_view payload);
[[nodiscard]] PartialMsg unpack_partial(std::string_view payload);
[[nodiscard]] ErrorMsg unpack_error(std::string_view payload);

// --- framing ---------------------------------------------------------------

/// Wrap a packed payload in the versioned CRC frame.
[[nodiscard]] std::string frame(MsgType type, std::string_view payload);

struct Frame {
  MsgType type = MsgType::kError;
  std::string payload;
};

/// Decode the frame starting at `offset` in `buf`, advancing `offset` past
/// it. Throws common::ParseError on bad magic, protocol version mismatch
/// ("wire: protocol version mismatch ..."), unknown type, oversized length,
/// truncation or CRC mismatch.
[[nodiscard]] Frame read_frame(std::string_view buf, std::size_t& offset);

}  // namespace supremm::federation::wire
