// Shard catalog (DESIGN.md §17): which archives live where, and which can
// be skipped for a given query.
//
// A shard owns the jobs of a set of clusters over an inclusive day-index
// range — the (cluster, time-range) partitioning the paper's two-cluster
// deployment (Ranger + Lonestar4) generalizes to. Pruning is conservative:
// a shard is dropped only when the catalog bounds prove no row of it can
// match (cluster equality misses its cluster set, or the query's derived
// day window — widened a day on each side against double rounding — is
// disjoint from its day range). NaN bounds prune nothing: a NaN comparison
// matches no rows, but proving that is the executor's job, not the
// catalog's.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "service/request.h"

namespace supremm::federation {

/// Catalog entry for one shard.
struct ShardInfo {
  std::string name;
  /// Clusters whose jobs this shard owns; empty = unknown (never pruned by
  /// cluster).
  std::vector<std::string> clusters;
  /// Inclusive day-index bounds (end_day_index units) of the shard's rows.
  /// The defaults are effectively open.
  std::int64_t day_lo = std::numeric_limits<std::int64_t>::min() / 2;
  std::int64_t day_hi = std::numeric_limits<std::int64_t>::max() / 2;
};

class Catalog {
 public:
  void add(ShardInfo info) { shards_.push_back(std::move(info)); }
  [[nodiscard]] const std::vector<ShardInfo>& shards() const noexcept { return shards_; }
  [[nodiscard]] std::size_t size() const noexcept { return shards_.size(); }

  /// Indices (catalog order) of the shards the query must be sent to. May
  /// be empty when every shard is provably irrelevant — the planner still
  /// contacts one shard so an empty result keeps the real output schema.
  [[nodiscard]] std::vector<std::size_t> prune(const service::QuerySpec& spec) const;

 private:
  std::vector<ShardInfo> shards_;
};

}  // namespace supremm::federation
