// The scatter-gather coordinator (DESIGN.md §17): the service-side planner
// that turns one compiled QuerySpec into per-shard conversations and merges
// the day-level partials back into the exact table a single warehouse would
// have produced.
//
// Federation implements service::RemoteExecutor, so a Service routes every
// query against `config().table` here with Service::bind_remote. The plan
// is fixed: prune shards by catalog bounds, scatter the same request bytes
// to every surviving shard on its own thread (each transport carries the
// per-shard deadline), gather partials, merge with
// warehouse::partial::merge_partials. Shard failures degrade rather than
// fail: the merged answer covers the shards that responded and the result
// reports complete=false (the service responds Status::kPartial). Only a
// scatter with zero successful shards throws.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "federation/catalog.h"
#include "federation/transport.h"
#include "service/service.h"

namespace supremm::federation {

class Federation final : public service::RemoteExecutor {
 public:
  struct Config {
    /// Table name this federation serves; queries against it route here.
    std::string table = "jobs";
    /// Unique ascending int64 column fixing cross-shard group order. The
    /// jobs realm is published ascending by job id, so the default
    /// reproduces single-warehouse first-seen order exactly.
    std::string rank_column = "job_id";
    /// Per-shard exchange deadline; 0 = no deadline.
    std::uint32_t shard_deadline_ms = 10'000;
    /// Serve a degraded (complete=false) answer when some shards fail.
    /// When false, any contacted-shard failure throws instead.
    bool allow_partial = true;
    /// Client name sent in the wire Hello.
    std::string client = "coordinator";
  };

  explicit Federation(Config cfg) : cfg_(std::move(cfg)) {}
  Federation() : Federation(Config{}) {}

  /// Register a shard: its catalog entry plus the transport that reaches
  /// its executor. Scatter order (and merge order) is registration order.
  void add_shard(ShardInfo info, std::shared_ptr<Transport> transport);

  [[nodiscard]] const Catalog& catalog() const noexcept { return catalog_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  // service::RemoteExecutor
  [[nodiscard]] const std::string& table_name() const override { return cfg_.table; }
  /// Prune, scatter, gather, merge. Throws InvalidArgument when the
  /// federation has no shards or the spec targets another table; throws
  /// common::Error when no shard delivered a partial (the per-shard errors
  /// are folded into the message).
  [[nodiscard]] service::RemoteResult run(const service::QuerySpec& spec) const override;

 private:
  Config cfg_;
  Catalog catalog_;
  std::vector<std::shared_ptr<Transport>> transports_;
};

}  // namespace supremm::federation
