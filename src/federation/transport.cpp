#include "federation/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/error.h"

namespace supremm::federation {

std::string LoopbackTransport::exchange(std::string_view request, std::uint32_t deadline_ms) {
  exchanges_.fetch_add(1);
  if (before_) before_(deadline_ms);
  std::string response = executor_->serve(request);
  if (corrupt_) corrupt_(response);
  return response;
}

namespace {

void set_timeout(int fd, int opt, std::uint32_t ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, opt, &tv, sizeof(tv));
}

void write_all(int fd, std::string_view bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw common::IoError("shard transport: send failed: " + std::string(strerror(errno)));
    }
    off += static_cast<std::size_t>(n);
  }
}

/// Read to EOF. A receive timeout (EAGAIN/EWOULDBLOCK) reports as Cancelled
/// so the planner accounts the shard as timed out rather than errored.
std::string read_to_eof(int fd) {
  std::string out;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n == 0) return out;
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw common::Cancelled("shard transport: response deadline expired");
      }
      throw common::IoError("shard transport: recv failed: " + std::string(strerror(errno)));
    }
    out.append(buf, static_cast<std::size_t>(n));
  }
}

struct FdCloser {
  int fd;
  ~FdCloser() {
    if (fd >= 0) ::close(fd);
  }
};

}  // namespace

std::string SocketTransport::exchange(std::string_view request, std::uint32_t deadline_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw common::IoError("shard transport: socket failed: " + std::string(strerror(errno)));
  }
  FdCloser closer{fd};
  if (deadline_ms > 0) {
    set_timeout(fd, SO_SNDTIMEO, deadline_ms);
    set_timeout(fd, SO_RCVTIMEO, deadline_ms);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port_);
  if (::inet_pton(AF_INET, host_.c_str(), &addr.sin_addr) != 1) {
    throw common::IoError("shard transport: bad host '" + host_ + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw common::IoError("shard transport: connect to " + host_ + ":" +
                          std::to_string(port_) + " failed: " + std::string(strerror(errno)));
  }
  write_all(fd, request);
  ::shutdown(fd, SHUT_WR);  // EOF marks the end of the request conversation
  return read_to_eof(fd);
}

ShardServer::ShardServer(const ShardExecutor& executor, std::uint16_t port)
    : executor_(&executor) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw common::IoError("shard server: socket failed: " + std::string(strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string err = strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::IoError("shard server: bind/listen failed: " + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { loop(); });
}

ShardServer::~ShardServer() { stop(); }

void ShardServer::stop() {
  if (!stopping_.exchange(true)) {
    // Shut the listener down; the blocking accept() fails and the loop exits.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ShardServer::loop() {
  while (!stopping_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (stop) or broken beyond repair
    }
    FdCloser closer{fd};
    // Bound the read so a wedged client cannot pin the accept loop forever.
    set_timeout(fd, SO_RCVTIMEO, 30'000);
    std::string request;
    try {
      request = read_to_eof(fd);
    } catch (const std::exception&) {
      continue;  // client vanished or stalled: drop the connection
    }
    const std::uint32_t stall = stall_ms_.load();
    if (stall > 0) std::this_thread::sleep_for(std::chrono::milliseconds(stall));
    try {
      write_all(fd, executor_->serve(request));
    } catch (const std::exception&) {
      // The client gave up mid-response; drop the connection and carry on.
    }
  }
}

}  // namespace supremm::federation
