// Shard transports: how a serialized conversation reaches an executor.
//
// The planner is transport-agnostic — it hands request bytes to exchange()
// and parses whatever bytes come back. LoopbackTransport calls the executor
// in-process (tests, benches, and the common embedded deployment);
// SocketTransport speaks the same bytes over TCP to a ShardServer, which
// turns any ShardExecutor into a networkable daemon in the slurmdbd mold.
//
// Failure contract: a deadline that expires inside exchange() throws
// common::Cancelled (the planner accounts the shard as timed out); every
// other transport failure throws common::IoError. Malformed response bytes
// are NOT the transport's problem — the planner's frame parser rejects them
// with ParseError.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "federation/executor.h"

namespace supremm::federation {

class Transport {
 public:
  virtual ~Transport() = default;
  /// Send one request conversation, return the response conversation.
  /// deadline_ms == 0 means no deadline.
  [[nodiscard]] virtual std::string exchange(std::string_view request,
                                             std::uint32_t deadline_ms) = 0;
};

/// In-process transport: the executor answers on the caller's thread. The
/// request/response bytes still round-trip through the full wire codec, so
/// loopback tests exercise exactly what the socket path ships.
class LoopbackTransport final : public Transport {
 public:
  explicit LoopbackTransport(const ShardExecutor& executor) : executor_(&executor) {}

  [[nodiscard]] std::string exchange(std::string_view request,
                                     std::uint32_t deadline_ms) override;

  /// Test hooks. before() runs ahead of the executor and may throw (a dead
  /// or unreachable shard); corrupt() may rewrite the response bytes (CRC
  /// forging, truncation). Both default to no-ops.
  void set_before(std::function<void(std::uint32_t deadline_ms)> fn) { before_ = std::move(fn); }
  void set_corrupt(std::function<void(std::string&)> fn) { corrupt_ = std::move(fn); }

  /// Conversations served, for catalog-pruning assertions.
  [[nodiscard]] std::size_t exchanges() const noexcept { return exchanges_.load(); }

 private:
  const ShardExecutor* executor_;
  std::function<void(std::uint32_t)> before_;
  std::function<void(std::string&)> corrupt_;
  std::atomic<std::size_t> exchanges_{0};
};

/// One-conversation-per-connection TCP client: connect, write the request,
/// shutdown the write side, read the response to EOF. The remaining
/// deadline budget becomes the socket receive timeout.
class SocketTransport final : public Transport {
 public:
  SocketTransport(std::string host, std::uint16_t port)
      : host_(std::move(host)), port_(port) {}

  [[nodiscard]] std::string exchange(std::string_view request,
                                     std::uint32_t deadline_ms) override;

 private:
  std::string host_;
  std::uint16_t port_;
};

/// Accept-loop daemon wrapping a ShardExecutor: binds 127.0.0.1:<port>
/// (port 0 picks a free one — tests read port() back), serves each
/// connection read-to-EOF → ShardExecutor::serve → write → close on a
/// detached-joinable background thread. stop() (and the destructor) closes
/// the listener and joins.
class ShardServer {
 public:
  explicit ShardServer(const ShardExecutor& executor, std::uint16_t port = 0);
  ~ShardServer();

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  void stop();

  /// Test knob: sleep this long before writing each response (drives the
  /// client's receive timeout in the shard-kill test).
  void set_stall_ms(std::uint32_t ms) { stall_ms_.store(ms); }

 private:
  void loop();

  const ShardExecutor* executor_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<std::uint32_t> stall_ms_{0};
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace supremm::federation
