#include "federation/wire.h"

#include <bit>
#include <cstring>

#include "common/checksum.h"
#include "common/error.h"

namespace supremm::federation::wire {

void Writer::raw(const void* p, std::size_t n) {
  buf_.append(static_cast<const char*>(p), n);
}

void Writer::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s);
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) {
    throw common::ParseError("wire: truncated message (need " + std::to_string(n) + " bytes, " +
                             std::to_string(remaining()) + " left)");
  }
}

std::uint8_t Reader::u8() {
  need(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t Reader::u16() {
  need(2);
  std::uint16_t v;
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

std::uint32_t Reader::u32() {
  need(4);
  std::uint32_t v;
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

std::uint64_t Reader::u64() {
  need(8);
  std::uint64_t v;
  std::memcpy(&v, data_.data() + pos_, sizeof(v));
  pos_ += sizeof(v);
  return v;
}

std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

double Reader::f64() { return std::bit_cast<double>(u64()); }

std::string Reader::str() {
  const std::uint32_t len = u32();
  need(len);
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

void Reader::check_count(std::uint64_t count, std::size_t min_bytes) const {
  if (count > remaining() / (min_bytes == 0 ? 1 : min_bytes)) {
    throw common::ParseError("wire: implausible element count " + std::to_string(count));
  }
}

void Reader::expect_done() const {
  if (remaining() != 0) {
    throw common::ParseError("wire: " + std::to_string(remaining()) +
                             " trailing bytes after message");
  }
}

namespace {

// --- enum guards: every enum crossing the wire re-validates on decode ------

service::TermOp term_op(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(service::TermOp::kBetween)) {
    throw common::ParseError("wire: unknown predicate op " + std::to_string(v));
  }
  return static_cast<service::TermOp>(v);
}

warehouse::AggKind agg_kind(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(warehouse::AggKind::kCount)) {
    throw common::ParseError("wire: unknown aggregate kind " + std::to_string(v));
  }
  return static_cast<warehouse::AggKind>(v);
}

warehouse::ColType col_type(std::uint8_t v) {
  if (v > static_cast<std::uint8_t>(warehouse::ColType::kString)) {
    throw common::ParseError("wire: unknown column type " + std::to_string(v));
  }
  return static_cast<warehouse::ColType>(v);
}

void put_key_value(Writer& w, const warehouse::partial::KeyValue& v) {
  w.u8(static_cast<std::uint8_t>(v.type));
  switch (v.type) {
    case warehouse::ColType::kString:
      w.str(v.str);
      break;
    case warehouse::ColType::kInt64:
      w.i64(v.i64);
      break;
    case warehouse::ColType::kDouble:
      w.u64(v.bits);
      break;
  }
}

warehouse::partial::KeyValue get_key_value(Reader& r) {
  warehouse::partial::KeyValue v;
  v.type = col_type(r.u8());
  switch (v.type) {
    case warehouse::ColType::kString:
      v.str = r.str();
      break;
    case warehouse::ColType::kInt64:
      v.i64 = r.i64();
      break;
    case warehouse::ColType::kDouble:
      v.bits = r.u64();
      break;
  }
  return v;
}

void put_agg_state(Writer& w, const warehouse::AggState& s) {
  w.f64(s.sum);
  w.f64(s.wsum);
  w.f64(s.wvsum);
  w.f64(s.mn);
  w.f64(s.mx);
  w.i64(s.n);
}

warehouse::AggState get_agg_state(Reader& r) {
  warehouse::AggState s;
  s.sum = r.f64();
  s.wsum = r.f64();
  s.wvsum = r.f64();
  s.mn = r.f64();
  s.mx = r.f64();
  s.n = r.i64();
  return s;
}

constexpr std::size_t kAggStateBytes = 6 * 8;
constexpr std::size_t kMinKeyValueBytes = 1 + 4;  // type + shortest payload (empty string)
constexpr std::size_t kMinTupleBytes = 4 + 4 + 8 + 4;  // group/extra counts + rank + ndays

}  // namespace

// --- hello / error ---------------------------------------------------------

std::string pack_hello(const Hello& m) {
  Writer w;
  w.str(m.client);
  return w.take();
}

Hello unpack_hello(std::string_view payload) {
  Reader r(payload);
  Hello m;
  m.client = r.str();
  r.expect_done();
  return m;
}

std::string pack_hello_ack(const HelloAck& m) {
  Writer w;
  w.str(m.shard);
  return w.take();
}

HelloAck unpack_hello_ack(std::string_view payload) {
  Reader r(payload);
  HelloAck m;
  m.shard = r.str();
  r.expect_done();
  return m;
}

std::string pack_error(const ErrorMsg& m) {
  Writer w;
  w.u8(m.timeout ? 1 : 0);
  w.str(m.message);
  return w.take();
}

ErrorMsg unpack_error(std::string_view payload) {
  Reader r(payload);
  ErrorMsg m;
  const std::uint8_t timeout = r.u8();
  if (timeout > 1) {
    throw common::ParseError("wire: bad timeout flag " + std::to_string(timeout));
  }
  m.timeout = timeout == 1;
  m.message = r.str();
  r.expect_done();
  return m;
}

// --- query -----------------------------------------------------------------

std::string pack_query(const QueryMsg& m) {
  Writer w;
  w.str(m.spec.table);
  w.u32(static_cast<std::uint32_t>(m.spec.where.size()));
  for (const auto& t : m.spec.where) {
    w.u8(static_cast<std::uint8_t>(t.op));
    w.str(t.column);
    w.str(t.value);
    w.f64(t.lo);
    w.f64(t.hi);
  }
  w.u32(static_cast<std::uint32_t>(m.spec.group_by.size()));
  for (const auto& g : m.spec.group_by) w.str(g);
  w.u32(static_cast<std::uint32_t>(m.spec.aggs.size()));
  for (const auto& a : m.spec.aggs) {
    w.u8(static_cast<std::uint8_t>(a.kind));
    w.str(a.column);
    w.str(a.weight);
    w.str(a.as);
  }
  w.u32(static_cast<std::uint32_t>(m.spec.threads));
  w.u32(m.deadline_ms);
  w.str(m.rank_column);
  return w.take();
}

QueryMsg unpack_query(std::string_view payload) {
  Reader r(payload);
  QueryMsg m;
  m.spec.table = r.str();
  const std::uint32_t nwhere = r.u32();
  r.check_count(nwhere, 1 + 4 + 4 + 8 + 8);
  m.spec.where.reserve(nwhere);
  for (std::uint32_t i = 0; i < nwhere; ++i) {
    service::Term t;
    t.op = term_op(r.u8());
    t.column = r.str();
    t.value = r.str();
    t.lo = r.f64();
    t.hi = r.f64();
    m.spec.where.push_back(std::move(t));
  }
  const std::uint32_t ngroup = r.u32();
  r.check_count(ngroup, 4);
  m.spec.group_by.reserve(ngroup);
  for (std::uint32_t i = 0; i < ngroup; ++i) m.spec.group_by.push_back(r.str());
  const std::uint32_t naggs = r.u32();
  r.check_count(naggs, 1 + 4 + 4 + 4);
  m.spec.aggs.reserve(naggs);
  for (std::uint32_t i = 0; i < naggs; ++i) {
    warehouse::AggSpec a;
    a.kind = agg_kind(r.u8());
    a.column = r.str();
    a.weight = r.str();
    a.as = r.str();
    m.spec.aggs.push_back(std::move(a));
  }
  m.spec.threads = r.u32();
  m.deadline_ms = r.u32();
  m.rank_column = r.str();
  r.expect_done();
  return m;
}

// --- partial ---------------------------------------------------------------

std::string pack_partial(const PartialMsg& m) {
  Writer w;
  w.u8(m.rollup_served ? 1 : 0);
  const auto& p = m.partial;
  w.u64(p.stats.chunks_total);
  w.u64(p.stats.chunks_pruned);
  w.u64(p.stats.rows_scanned);
  w.u64(p.stats.rows_matched);
  w.u32(static_cast<std::uint32_t>(p.key_schema.size()));
  for (const auto& [name, type] : p.key_schema) {
    w.str(name);
    w.u8(static_cast<std::uint8_t>(type));
  }
  w.u32(static_cast<std::uint32_t>(p.naggs));
  w.u32(static_cast<std::uint32_t>(p.tuples.size()));
  for (const auto& t : p.tuples) {
    w.u32(static_cast<std::uint32_t>(t.group.size()));
    for (const auto& v : t.group) put_key_value(w, v);
    w.u32(static_cast<std::uint32_t>(t.extra.size()));
    for (const auto& v : t.extra) put_key_value(w, v);
    w.i64(t.rank);
    w.u32(static_cast<std::uint32_t>(t.days.size()));
    for (const std::int64_t d : t.days) w.i64(d);
    for (const auto& s : t.states) put_agg_state(w, s);
  }
  return w.take();
}

PartialMsg unpack_partial(std::string_view payload) {
  Reader r(payload);
  PartialMsg m;
  const std::uint8_t rollup = r.u8();
  if (rollup > 1) {
    throw common::ParseError("wire: bad rollup_served flag " + std::to_string(rollup));
  }
  m.rollup_served = rollup == 1;
  auto& p = m.partial;
  p.stats.chunks_total = r.u64();
  p.stats.chunks_pruned = r.u64();
  p.stats.rows_scanned = r.u64();
  p.stats.rows_matched = r.u64();
  const std::uint32_t nkeys = r.u32();
  r.check_count(nkeys, 4 + 1);
  p.key_schema.reserve(nkeys);
  for (std::uint32_t i = 0; i < nkeys; ++i) {
    std::string name = r.str();
    p.key_schema.emplace_back(std::move(name), col_type(r.u8()));
  }
  p.naggs = r.u32();
  // A tuple carries naggs states per day; an absurd naggs would let a small
  // forged message demand huge allocations below.
  if (p.naggs > 64) {
    throw common::ParseError("wire: implausible aggregate count " + std::to_string(p.naggs));
  }
  const std::uint32_t ntuples = r.u32();
  r.check_count(ntuples, kMinTupleBytes);
  p.tuples.reserve(ntuples);
  for (std::uint32_t i = 0; i < ntuples; ++i) {
    warehouse::partial::TuplePartial t;
    const std::uint32_t ngroup = r.u32();
    if (ngroup != nkeys) {
      throw common::ParseError("wire: tuple group width " + std::to_string(ngroup) +
                               " != key schema width " + std::to_string(nkeys));
    }
    r.check_count(ngroup, kMinKeyValueBytes);
    t.group.reserve(ngroup);
    for (std::uint32_t k = 0; k < ngroup; ++k) t.group.push_back(get_key_value(r));
    const std::uint32_t nextra = r.u32();
    r.check_count(nextra, kMinKeyValueBytes);
    t.extra.reserve(nextra);
    for (std::uint32_t k = 0; k < nextra; ++k) t.extra.push_back(get_key_value(r));
    t.rank = r.i64();
    const std::uint32_t ndays = r.u32();
    r.check_count(ndays, 8 + p.naggs * kAggStateBytes);
    t.days.reserve(ndays);
    for (std::uint32_t d = 0; d < ndays; ++d) t.days.push_back(r.i64());
    for (std::uint32_t d = 1; d < ndays; ++d) {
      if (t.days[d] <= t.days[d - 1]) {
        throw common::ParseError("wire: tuple day list not strictly ascending");
      }
    }
    t.states.reserve(std::size_t{ndays} * p.naggs);
    for (std::size_t s = 0; s < std::size_t{ndays} * p.naggs; ++s) {
      t.states.push_back(get_agg_state(r));
    }
    p.tuples.push_back(std::move(t));
  }
  r.expect_done();
  return m;
}

// --- framing ---------------------------------------------------------------

std::string frame(MsgType type, std::string_view payload) {
  if (payload.size() > kMaxPayload) {
    throw common::InvalidArgument("wire: payload exceeds frame cap");
  }
  Writer w;
  w.u32(kMagic);
  w.u16(kProtocolVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  std::string out = w.take();
  out.append(payload);
  const std::uint32_t crc = common::crc32(out);
  out.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  return out;
}

Frame read_frame(std::string_view buf, std::size_t& offset) {
  if (offset > buf.size()) throw common::ParseError("wire: frame offset past buffer");
  Reader r(buf.substr(offset));
  const std::uint32_t magic = r.u32();
  if (magic != kMagic) {
    throw common::ParseError("wire: bad frame magic");
  }
  const std::uint16_t version = r.u16();
  if (version != kProtocolVersion) {
    throw common::ParseError("wire: protocol version mismatch (peer " + std::to_string(version) +
                             ", local " + std::to_string(kProtocolVersion) + ")");
  }
  const std::uint16_t type = r.u16();
  if (type < static_cast<std::uint16_t>(MsgType::kHello) ||
      type > static_cast<std::uint16_t>(MsgType::kError)) {
    throw common::ParseError("wire: unknown message type " + std::to_string(type));
  }
  const std::uint32_t len = r.u32();
  if (len > kMaxPayload) {
    throw common::ParseError("wire: frame payload length " + std::to_string(len) +
                             " exceeds cap");
  }
  if (r.remaining() < std::size_t{len} + 4) {
    throw common::ParseError("wire: truncated frame");
  }
  const std::string_view body = buf.substr(offset, kFrameHeaderBytes + len);
  const std::string_view crc_bytes = buf.substr(offset + kFrameHeaderBytes + len, 4);
  std::uint32_t crc;
  std::memcpy(&crc, crc_bytes.data(), sizeof(crc));
  if (common::crc32(body) != crc) {
    throw common::ParseError("wire: frame checksum mismatch");
  }
  Frame f;
  f.type = static_cast<MsgType>(type);
  f.payload = std::string(buf.substr(offset + kFrameHeaderBytes, len));
  offset += kFrameHeaderBytes + len + 4;
  return f;
}

}  // namespace supremm::federation::wire
