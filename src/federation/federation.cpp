#include "federation/federation.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

#include "common/error.h"
#include "federation/wire.h"
#include "warehouse/partial.h"

namespace supremm::federation {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// One shard's gathered answer: the report the service aggregates into its
/// metrics plus (on kOk) the partial to merge.
struct Gathered {
  service::RemoteShardReport report;
  std::optional<wire::PartialMsg> partial;
};

/// Parse one response conversation (hello-ack + partial | error). Throws
/// ParseError on malformed bytes; returns the error frame's content through
/// `err` when the shard answered with a well-formed failure.
std::optional<wire::PartialMsg> parse_response(std::string_view resp, wire::ErrorMsg* err) {
  std::size_t offset = 0;
  const wire::Frame ack = wire::read_frame(resp, offset);
  if (ack.type != wire::MsgType::kHelloAck) {
    throw common::ParseError("wire: expected hello-ack frame, got type " +
                             std::to_string(static_cast<int>(ack.type)));
  }
  (void)wire::unpack_hello_ack(ack.payload);
  const wire::Frame body = wire::read_frame(resp, offset);
  if (offset != resp.size()) {
    throw common::ParseError("wire: trailing bytes after response conversation");
  }
  if (body.type == wire::MsgType::kError) {
    *err = wire::unpack_error(body.payload);
    return std::nullopt;
  }
  if (body.type != wire::MsgType::kPartial) {
    throw common::ParseError("wire: expected partial or error frame, got type " +
                             std::to_string(static_cast<int>(body.type)));
  }
  return wire::unpack_partial(body.payload);
}

}  // namespace

void Federation::add_shard(ShardInfo info, std::shared_ptr<Transport> transport) {
  if (transport == nullptr) {
    throw common::InvalidArgument("Federation::add_shard: null transport");
  }
  catalog_.add(std::move(info));
  transports_.push_back(std::move(transport));
}

service::RemoteResult Federation::run(const service::QuerySpec& spec) const {
  if (catalog_.size() == 0) {
    throw common::InvalidArgument("federation has no shards");
  }
  if (spec.table != cfg_.table) {
    throw common::InvalidArgument("federation serves table '" + cfg_.table +
                                  "', not '" + spec.table + "'");
  }

  std::vector<std::size_t> contacted = catalog_.prune(spec);
  // Every shard provably irrelevant: still ask one, so the empty answer
  // carries the real output schema (the executor's scan selects nothing).
  if (contacted.empty()) contacted.push_back(0);

  const std::string request =
      wire::frame(wire::MsgType::kHello, wire::pack_hello({cfg_.client})) +
      wire::frame(wire::MsgType::kQuery,
                  wire::pack_query({spec, cfg_.shard_deadline_ms, cfg_.rank_column}));

  // Scatter: one thread per contacted shard. Transports own their blocking
  // I/O; the per-shard deadline rides inside exchange().
  std::vector<Gathered> gathered(contacted.size());
  {
    std::vector<std::thread> threads;
    threads.reserve(contacted.size());
    for (std::size_t i = 0; i < contacted.size(); ++i) {
      threads.emplace_back([this, &request, &gathered, &contacted, i] {
        const std::size_t shard_idx = contacted[i];
        Gathered& g = gathered[i];
        g.report.shard = catalog_.shards()[shard_idx].name;
        const Clock::time_point t0 = Clock::now();
        try {
          const std::string resp =
              transports_[shard_idx]->exchange(request, cfg_.shard_deadline_ms);
          wire::ErrorMsg err;
          if (auto partial = parse_response(resp, &err)) {
            g.report.outcome = service::RemoteShardReport::Outcome::kOk;
            g.report.rollup_served = partial->rollup_served;
            g.report.stats = partial->partial.stats;
            g.partial = std::move(partial);
          } else if (err.timeout) {
            g.report.outcome = service::RemoteShardReport::Outcome::kTimedOut;
            g.report.error = err.message;
          } else {
            g.report.outcome = service::RemoteShardReport::Outcome::kError;
            g.report.error = err.message;
          }
        } catch (const common::Cancelled& e) {
          g.report.outcome = service::RemoteShardReport::Outcome::kTimedOut;
          g.report.error = e.what();
        } catch (const std::exception& e) {
          g.report.outcome = service::RemoteShardReport::Outcome::kError;
          g.report.error = e.what();
        }
        g.report.ms = ms_since(t0);
      });
    }
    for (std::thread& t : threads) t.join();
  }

  // Gather in catalog order: merge order must not depend on which shard
  // answered first (merge_partials left-folds duplicate days in parts
  // order, and the report list is part of the metrics contract).
  std::vector<warehouse::partial::Partial> parts;
  std::vector<std::string> failures;
  service::RemoteResult out;
  std::vector<bool> was_contacted(catalog_.size(), false);
  for (std::size_t i = 0; i < contacted.size(); ++i) {
    was_contacted[contacted[i]] = true;
    Gathered& g = gathered[i];
    if (g.partial.has_value()) {
      parts.push_back(std::move(g.partial->partial));
    } else {
      failures.push_back(g.report.shard + " (" +
                         service::to_string(g.report.outcome) + ": " + g.report.error +
                         ")");
    }
    out.shards.push_back(std::move(g.report));
  }
  for (std::size_t s = 0; s < catalog_.size(); ++s) {
    if (was_contacted[s]) continue;
    service::RemoteShardReport pruned;
    pruned.shard = catalog_.shards()[s].name;
    pruned.outcome = service::RemoteShardReport::Outcome::kPruned;
    out.shards.push_back(std::move(pruned));
  }

  if (parts.empty()) {
    std::string msg = "federated scatter failed at every contacted shard: ";
    for (std::size_t f = 0; f < failures.size(); ++f) {
      if (f > 0) msg += "; ";
      msg += failures[f];
    }
    throw common::IoError(msg);
  }
  out.complete = failures.empty();
  if (!out.complete && !cfg_.allow_partial) {
    std::string msg = "federated scatter lost shards (allow_partial=false): ";
    for (std::size_t f = 0; f < failures.size(); ++f) {
      if (f > 0) msg += "; ";
      msg += failures[f];
    }
    throw common::IoError(msg);
  }

  out.table = std::make_shared<const warehouse::Table>(warehouse::partial::merge_partials(
      parts, spec.aggs, cfg_.table + "_agg", &out.stats));
  return out;
}

}  // namespace supremm::federation
