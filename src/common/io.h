// Fault-injectable durable file I/O (DESIGN.md §14).
//
// Every mutation the archive's commit protocol performs on disk — opening a
// sink, writing bytes, fsyncing a file or directory, renaming, removing —
// goes through this layer so a test policy can observe the exact operation
// sequence and fail it at any point: crash dead at the Nth op, tear a write
// in half, or return ENOSPC. Production passes a null policy and pays one
// branch per operation.
//
// Crash model: a simulated crash stops the op sequence — everything already
// performed is on disk, nothing later happens, and a torn write leaves a
// prefix of the buffer. Writes are fsynced before any operation that
// publishes them (the commit protocol orders write < fsync < rename <
// fsync-dir), so the reachable crash states are exactly the prefixes of the
// op sequence plus a torn final write. That is what the crash-loop harness
// (tests/test_crash.cpp) enumerates.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <exception>
#include <string>
#include <string_view>

namespace supremm::common {

/// The operation vocabulary a policy can observe and fail.
enum class IoOp : std::uint8_t {
  kOpen,      // create/truncate a sink file
  kWrite,     // append one buffer (size = byte count)
  kFsync,     // flush a sink's data to stable storage
  kClose,     // close a sink
  kRename,    // atomically move a file to its final name
  kRemove,    // unlink a file (or rmdir an empty directory)
  kMkdir,     // create a directory chain
  kFsyncDir,  // fsync a directory (makes renames/unlinks in it durable)
};
inline constexpr std::size_t kIoOpCount = 8;

[[nodiscard]] std::string_view io_op_name(IoOp op) noexcept;

/// Thrown by an IoPolicy (or by a sink completing a torn write) to simulate
/// the process dying at an injected kill point. Deliberately NOT derived
/// from common::Error: production code handles Error subtypes, and a
/// simulated crash must never be "handled" — only the crash harness catches
/// it, then re-opens the archive to exercise recovery.
class SimulatedCrash : public std::exception {
 public:
  SimulatedCrash(IoOp op, std::string path, std::uint64_t op_index);
  [[nodiscard]] const char* what() const noexcept override { return what_.c_str(); }
  [[nodiscard]] IoOp op() const noexcept { return op_; }
  [[nodiscard]] std::uint64_t op_index() const noexcept { return op_index_; }

 private:
  IoOp op_;
  std::uint64_t op_index_;
  std::string what_;
};

/// What a policy decides for one operation.
struct IoDecision {
  enum class Action : std::uint8_t {
    kProceed,    // perform the op normally
    kSkip,       // report success without performing the op (e.g. elide
                 // fsyncs to measure the durability tax)
    kFail,       // the op fails with IoError and no side effect (ENOSPC, ...)
    kTornWrite,  // write only `torn_bytes` of the buffer, then crash
  };
  Action action = Action::kProceed;
  std::size_t torn_bytes = 0;  // kTornWrite: bytes that reach the disk
  std::string error;           // kFail: failure detail ("ENOSPC", ...)

  [[nodiscard]] static IoDecision proceed() { return {}; }
};

/// Injection point consulted before every I/O operation. Implementations
/// may throw SimulatedCrash (process death before the op) or return a
/// decision that fails or tears it. The default policy (nullptr) proceeds.
class IoPolicy {
 public:
  virtual ~IoPolicy() = default;
  virtual IoDecision on_op(IoOp op, const std::string& path, std::size_t bytes) = 0;
};

/// Counts operations per kind (and bytes written) without failing anything;
/// with `skip_fsync` it elides kFsync/kFsyncDir so a bench can measure the
/// durability tax of a commit. Thread-safe.
class CountingIoPolicy : public IoPolicy {
 public:
  explicit CountingIoPolicy(bool skip_fsync = false) : skip_fsync_(skip_fsync) {}

  IoDecision on_op(IoOp op, const std::string& path, std::size_t bytes) override;

  [[nodiscard]] std::uint64_t count(IoOp op) const noexcept {
    return counts_[static_cast<std::size_t>(op)].load();
  }
  /// Total operations observed (the kill-point space of one commit).
  [[nodiscard]] std::uint64_t total() const noexcept;
  [[nodiscard]] std::uint64_t bytes_written() const noexcept { return bytes_written_.load(); }

 private:
  bool skip_fsync_;
  std::array<std::atomic<std::uint64_t>, kIoOpCount> counts_{};
  std::atomic<std::uint64_t> bytes_written_{0};
};

namespace io {

/// A write-only file sink whose every operation consults `policy` (null =
/// proceed). Data is written with POSIX fds so fsync() is a real fsync.
/// Destruction without close() releases the fd without consulting the
/// policy (the abort path must not re-enter injection).
class FileSink {
 public:
  /// Opens (creates/truncates) `path`. Throws IoError on failure.
  FileSink(std::string path, IoPolicy* policy);
  ~FileSink();

  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  /// Append `data`, chunked into bounded write ops so large buffers expose
  /// several kill points. Throws IoError / SimulatedCrash per policy.
  void write(std::string_view data);
  /// fsync the file's data+metadata to stable storage.
  void fsync();
  /// Close the fd (consults the policy; further writes are invalid).
  void close();

 private:
  std::string path_;
  IoPolicy* policy_;
  int fd_ = -1;
};

/// Write `data` to `path` (open + chunked writes + optional fsync + close).
void write_file(const std::string& path, std::string_view data, IoPolicy* policy,
                bool durable);

/// Atomic rename; throws IoError naming both paths on failure.
void rename(const std::string& from, const std::string& to, IoPolicy* policy);

/// Unlink a file or remove an empty directory; missing targets are not an
/// error (removal is idempotent so recovery can replay it).
void remove(const std::string& path, IoPolicy* policy);

/// Create `path` and any missing parents.
void mkdirs(const std::string& path, IoPolicy* policy);

/// fsync a directory, making the renames/unlinks inside it durable.
void fsync_dir(const std::string& dir, IoPolicy* policy);

}  // namespace io

}  // namespace supremm::common
