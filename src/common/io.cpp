#include "common/io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/error.h"

namespace supremm::common {

namespace fs = std::filesystem;

std::string_view io_op_name(IoOp op) noexcept {
  switch (op) {
    case IoOp::kOpen: return "open";
    case IoOp::kWrite: return "write";
    case IoOp::kFsync: return "fsync";
    case IoOp::kClose: return "close";
    case IoOp::kRename: return "rename";
    case IoOp::kRemove: return "remove";
    case IoOp::kMkdir: return "mkdir";
    case IoOp::kFsyncDir: return "fsync-dir";
  }
  return "unknown";
}

SimulatedCrash::SimulatedCrash(IoOp op, std::string path, std::uint64_t op_index)
    : op_(op), op_index_(op_index) {
  what_ = "simulated crash at io op #" + std::to_string(op_index_) + " (" +
          std::string(io_op_name(op_)) + " " + path + ")";
}

IoDecision CountingIoPolicy::on_op(IoOp op, const std::string& path, std::size_t bytes) {
  (void)path;
  counts_[static_cast<std::size_t>(op)].fetch_add(1);
  if (op == IoOp::kWrite) bytes_written_.fetch_add(bytes);
  if (skip_fsync_ && (op == IoOp::kFsync || op == IoOp::kFsyncDir)) {
    IoDecision d;
    d.action = IoDecision::Action::kSkip;
    return d;
  }
  return IoDecision::proceed();
}

std::uint64_t CountingIoPolicy::total() const noexcept {
  std::uint64_t t = 0;
  for (const auto& c : counts_) t += c.load();
  return t;
}

namespace io {

namespace {

/// Bounded write-op size: large buffers become several ops, so a kill-point
/// sweep lands inside multi-chunk partition writes, not only between files.
constexpr std::size_t kWriteChunk = 64 * 1024;

/// Consult the policy; returns the decision (throws IoError for kFail).
IoDecision consult(IoPolicy* policy, IoOp op, const std::string& path, std::size_t bytes) {
  if (policy == nullptr) return IoDecision::proceed();
  IoDecision d = policy->on_op(op, path, bytes);
  if (d.action == IoDecision::Action::kFail) {
    throw IoError(std::string(io_op_name(op)) + " " + path + ": " +
                  (d.error.empty() ? "injected failure" : d.error));
  }
  return d;
}

[[noreturn]] void throw_errno(IoOp op, const std::string& path) {
  throw IoError(std::string(io_op_name(op)) + " " + path + ": " + std::strerror(errno));
}

void write_all(int fd, const char* data, std::size_t size, const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(IoOp::kWrite, path);
    }
    done += static_cast<std::size_t>(n);
  }
}

}  // namespace

FileSink::FileSink(std::string path, IoPolicy* policy)
    : path_(std::move(path)), policy_(policy) {
  (void)consult(policy_, IoOp::kOpen, path_, 0);
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd_ < 0) throw_errno(IoOp::kOpen, path_);
}

FileSink::~FileSink() {
  if (fd_ >= 0) ::close(fd_);  // abort path: no policy consult, best effort
}

void FileSink::write(std::string_view data) {
  std::size_t pos = 0;
  while (pos < data.size()) {
    const std::size_t chunk = std::min(kWriteChunk, data.size() - pos);
    const IoDecision d = consult(policy_, IoOp::kWrite, path_, chunk);
    if (d.action == IoDecision::Action::kSkip) {
      pos += chunk;
      continue;
    }
    if (d.action == IoDecision::Action::kTornWrite) {
      // A torn write only exists because the process died mid-write: persist
      // the prefix, then crash.
      const std::size_t torn = std::min(d.torn_bytes, chunk);
      write_all(fd_, data.data() + pos, torn, path_);
      ::close(fd_);
      fd_ = -1;
      throw SimulatedCrash(IoOp::kWrite, path_, 0);
    }
    write_all(fd_, data.data() + pos, chunk, path_);
    pos += chunk;
  }
}

void FileSink::fsync() {
  const IoDecision d = consult(policy_, IoOp::kFsync, path_, 0);
  if (d.action == IoDecision::Action::kSkip) return;
  if (::fsync(fd_) != 0) throw_errno(IoOp::kFsync, path_);
}

void FileSink::close() {
  (void)consult(policy_, IoOp::kClose, path_, 0);
  if (fd_ >= 0) {
    const int rc = ::close(fd_);
    fd_ = -1;
    if (rc != 0) throw_errno(IoOp::kClose, path_);
  }
}

void write_file(const std::string& path, std::string_view data, IoPolicy* policy,
                bool durable) {
  FileSink sink(path, policy);
  sink.write(data);
  if (durable) sink.fsync();
  sink.close();
}

void rename(const std::string& from, const std::string& to, IoPolicy* policy) {
  (void)consult(policy, IoOp::kRename, from + " -> " + to, 0);
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    throw IoError("rename " + from + " -> " + to + ": " + ec.message());
  }
}

void remove(const std::string& path, IoPolicy* policy) {
  (void)consult(policy, IoOp::kRemove, path, 0);
  std::error_code ec;
  fs::remove(path, ec);  // missing target reports success (idempotent replay)
  if (ec) throw IoError("remove " + path + ": " + ec.message());
}

void mkdirs(const std::string& path, IoPolicy* policy) {
  (void)consult(policy, IoOp::kMkdir, path, 0);
  std::error_code ec;
  fs::create_directories(path, ec);
  if (ec) throw IoError("mkdir " + path + ": " + ec.message());
}

void fsync_dir(const std::string& dir, IoPolicy* policy) {
  const IoDecision d = consult(policy, IoOp::kFsyncDir, dir, 0);
  if (d.action == IoDecision::Action::kSkip) return;
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) throw_errno(IoOp::kFsyncDir, dir);
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) throw_errno(IoOp::kFsyncDir, dir);
}

}  // namespace io

}  // namespace supremm::common
