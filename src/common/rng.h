// Deterministic random number streams.
//
// Every stochastic component of the simulator draws from an RngStream
// identified by a (seed, stream id) pair. Stream seeding is counter based
// (SplitMix64 over the pair hash), so results are reproducible and
// independent of thread count: parallel workers derive their streams from
// stable ids (node index, job id) rather than from a shared generator.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>
#include <vector>

namespace supremm::common {

/// SplitMix64 step; used for seed derivation and cheap stateless hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Stable 64-bit hash of a string (FNV-1a), for deriving streams from names.
[[nodiscard]] std::uint64_t hash_string(std::string_view s) noexcept;

/// A deterministic random stream with the distributions the facility model
/// needs. Cheap to construct; construct one per (entity, purpose).
class RngStream {
 public:
  /// Derive a stream from a master seed and a stream id.
  RngStream(std::uint64_t seed, std::uint64_t stream_id);

  /// Derive a stream from a master seed and a named purpose + index.
  RngStream(std::uint64_t seed, std::string_view purpose, std::uint64_t index);

  /// Uniform in [0, 1).
  [[nodiscard]] double uniform();
  /// Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal.
  [[nodiscard]] double normal();
  /// Normal with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double sd);
  /// Lognormal parameterized by the mean/sd of the *underlying* normal.
  [[nodiscard]] double lognormal(double mu, double sigma);
  /// Exponential with given mean (not rate).
  [[nodiscard]] double exponential(double mean);
  /// Poisson with given mean.
  [[nodiscard]] std::int64_t poisson(double mean);
  /// Bernoulli.
  [[nodiscard]] bool chance(double p);
  /// Pareto with scale xm > 0 and shape alpha > 0.
  [[nodiscard]] double pareto(double xm, double alpha);
  /// Pick an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Weights need not be normalized.
  [[nodiscard]] std::size_t weighted_index(const std::vector<double>& weights);

  /// Direct access to the engine for std distributions not wrapped here.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::mt19937_64 engine_;
};

/// Zipf-like weights: w[i] = 1 / (i+1)^s, i = 0..n-1. Used for the heavy
/// tailed user activity distribution (paper: ~2000 users, a handful dominate
/// node-hours).
[[nodiscard]] std::vector<double> zipf_weights(std::size_t n, double s);

}  // namespace supremm::common
