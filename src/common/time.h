// Simulation time model.
//
// The facility simulator and every downstream consumer (collector, ETL,
// analytics) share a single notion of time: integral seconds since the
// simulation epoch. The paper's data spans June 2011 - January 2013 sampled
// every 10 minutes; we keep second resolution so that job start/end events,
// collector samples and log messages interleave exactly.
#pragma once

#include <cstdint>
#include <string>

namespace supremm::common {

/// Seconds since the simulation epoch.
using TimePoint = std::int64_t;

/// A span of time in seconds.
using Duration = std::int64_t;

inline constexpr Duration kSecond = 1;
inline constexpr Duration kMinute = 60;
inline constexpr Duration kHour = 3600;
inline constexpr Duration kDay = 86400;
inline constexpr Duration kWeek = 7 * kDay;

/// Convert a duration to fractional hours.
[[nodiscard]] constexpr double to_hours(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kHour);
}

/// Convert a duration to fractional minutes.
[[nodiscard]] constexpr double to_minutes(Duration d) noexcept {
  return static_cast<double>(d) / static_cast<double>(kMinute);
}

/// Day index (0-based) of a time point.
[[nodiscard]] constexpr std::int64_t day_of(TimePoint t) noexcept { return t / kDay; }

/// Seconds past midnight of a time point.
[[nodiscard]] constexpr Duration second_of_day(TimePoint t) noexcept { return t % kDay; }

/// Day of week, 0 = Monday ... 6 = Sunday (epoch is defined to be a Monday).
[[nodiscard]] constexpr int weekday_of(TimePoint t) noexcept {
  return static_cast<int>((t / kDay) % 7);
}

/// Render a time point as "D+HH:MM:SS" (day index plus time of day). The
/// simulator has no calendar; day indices are unambiguous and sortable.
[[nodiscard]] std::string format_time(TimePoint t);

/// Render a duration as "HH:MM:SS" (hours may exceed 24).
[[nodiscard]] std::string format_duration(Duration d);

/// A regular sampling axis: points t0, t0+dt, t0+2dt, ...
class TimeAxis {
 public:
  TimeAxis(TimePoint start, Duration step, std::size_t count);

  [[nodiscard]] TimePoint start() const noexcept { return start_; }
  [[nodiscard]] Duration step() const noexcept { return step_; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] TimePoint at(std::size_t i) const noexcept {
    return start_ + static_cast<Duration>(i) * step_;
  }
  [[nodiscard]] TimePoint end() const noexcept { return at(count_ == 0 ? 0 : count_ - 1); }

  /// Index of the last axis point <= t, or npos when t precedes the axis.
  [[nodiscard]] std::size_t index_at(TimePoint t) const noexcept;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  TimePoint start_;
  Duration step_;
  std::size_t count_;
};

}  // namespace supremm::common
