// Plain-text table renderer for stakeholder reports (the terminal stand-in
// for XDMoD's charting UI).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace supremm::common {

/// Column-aligned ASCII table with optional title and right-aligned numeric
/// columns.
class AsciiTable {
 public:
  explicit AsciiTable(std::string title = {}) : title_(std::move(title)) {}

  /// Set the header row; also fixes the column count.
  void header(std::vector<std::string> cells);

  /// Append a data row; must match the header width if one was set.
  void row(std::vector<std::string> cells);

  /// Convenience: mixed row built from strings and doubles.
  class RowBuilder {
   public:
    explicit RowBuilder(AsciiTable& t) : table_(t) {}
    RowBuilder& cell(std::string v);
    RowBuilder& cell(double v, const char* fmt = "%.3f");
    RowBuilder& cell(std::int64_t v);
    ~RowBuilder();
    RowBuilder(const RowBuilder&) = delete;
    RowBuilder& operator=(const RowBuilder&) = delete;

   private:
    AsciiTable& table_;
    std::vector<std::string> cells_;
  };
  [[nodiscard]] RowBuilder add_row() { return RowBuilder(*this); }

  /// Render with box-drawing rules to the stream.
  void render(std::ostream& out) const;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Render a horizontal bar of width proportional to `value / max_value`
/// capped to `max_width` characters; used for terminal "charts".
[[nodiscard]] std::string ascii_bar(double value, double max_value, std::size_t max_width);

}  // namespace supremm::common
