#include "common/ascii_table.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace supremm::common {

void AsciiTable::header(std::vector<std::string> cells) { header_ = std::move(cells); }

void AsciiTable::row(std::vector<std::string> cells) {
  if (!header_.empty() && cells.size() != header_.size()) {
    throw InvalidArgument("AsciiTable row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

AsciiTable::RowBuilder& AsciiTable::RowBuilder::cell(std::string v) {
  cells_.push_back(std::move(v));
  return *this;
}

AsciiTable::RowBuilder& AsciiTable::RowBuilder::cell(double v, const char* fmt) {
  cells_.push_back(strprintf(fmt, v));  // NOLINT(cppcoreguidelines-pro-type-vararg)
  return *this;
}

AsciiTable::RowBuilder& AsciiTable::RowBuilder::cell(std::int64_t v) {
  cells_.push_back(strprintf("%lld", static_cast<long long>(v)));
  return *this;
}

AsciiTable::RowBuilder::~RowBuilder() { table_.row(std::move(cells_)); }

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (const char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' && c != '+' &&
        c != 'e' && c != 'E' && c != '%') {
      return false;
    }
  }
  return true;
}
}  // namespace

void AsciiTable::render(std::ostream& out) const {
  const std::size_t ncols = header_.empty() ? (rows_.empty() ? 0 : rows_.front().size())
                                            : header_.size();
  if (ncols == 0) return;

  std::vector<std::size_t> width(ncols, 0);
  for (std::size_t c = 0; c < ncols && c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < ncols && c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }

  auto rule = [&] {
    out << '+';
    for (std::size_t c = 0; c < ncols; ++c) {
      out << std::string(width[c] + 2, '-') << '+';
    }
    out << '\n';
  };
  auto emit_row = [&](const std::vector<std::string>& r) {
    out << '|';
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = c < r.size() ? r[c] : std::string();
      const std::size_t pad = width[c] - cell.size();
      if (looks_numeric(cell)) {
        out << ' ' << std::string(pad, ' ') << cell << ' ';
      } else {
        out << ' ' << cell << std::string(pad, ' ') << ' ';
      }
      out << '|';
    }
    out << '\n';
  };

  if (!title_.empty()) out << title_ << '\n';
  rule();
  if (!header_.empty()) {
    emit_row(header_);
    rule();
  }
  for (const auto& r : rows_) emit_row(r);
  rule();
}

std::string AsciiTable::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

std::string ascii_bar(double value, double max_value, std::size_t max_width) {
  if (max_value <= 0.0 || value <= 0.0 || max_width == 0) return {};
  const double frac = std::min(1.0, value / max_value);
  const auto n = static_cast<std::size_t>(frac * static_cast<double>(max_width) + 0.5);
  return std::string(n, '#');
}

}  // namespace supremm::common
