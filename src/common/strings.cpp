#include "common/strings.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "common/error.h"

namespace supremm::common {

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

namespace {
// strtoll/strtod need a NUL terminated buffer; string_views into larger
// lines are not. Copy into a small stack buffer.
template <typename F>
auto parse_with(std::string_view s, F f, const char* what) {
  char buf[64];
  const std::string_view t = trim(s);
  if (t.empty() || t.size() >= sizeof(buf)) throw ParseError(std::string(what) + ": '" + std::string(s) + "'");
  t.copy(buf, t.size());
  buf[t.size()] = '\0';
  char* end = nullptr;
  errno = 0;
  auto v = f(buf, &end);
  if (errno != 0 || end != buf + t.size()) {
    throw ParseError(std::string(what) + ": '" + std::string(s) + "'");
  }
  return v;
}
}  // namespace

std::int64_t parse_i64(std::string_view s) {
  return parse_with(s, [](const char* b, char** e) { return std::strtoll(b, e, 10); }, "int64");
}

std::uint64_t parse_u64(std::string_view s) {
  return parse_with(s, [](const char* b, char** e) { return std::strtoull(b, e, 10); }, "uint64");
}

double parse_f64(std::string_view s) {
  return parse_with(s, [](const char* b, char** e) { return std::strtod(b, e); }, "float64");
}

std::string strprintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, ap2);
    out.resize(static_cast<std::size_t>(n));
  }
  va_end(ap2);
  return out;
}

}  // namespace supremm::common
