// Work-sharing thread pool and deterministic parallel_for.
//
// The ETL pipeline and the facility simulator parallelize across nodes and
// jobs. Determinism rule (see DESIGN.md §7): parallel work items derive any
// randomness from stable ids, never from shared mutable generators, so the
// result of a parallel_for is identical for any thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace supremm::common {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future resolves when it has run.
  template <typename F>
  [[nodiscard]] std::future<void> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(f));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [begin, end) across the pool in contiguous chunks and
  /// wait for completion. Exceptions from any chunk are rethrown (first one).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Chunked variant: fn(chunk_begin, chunk_end) — lets callers hoist
  /// per-chunk setup (thread-local accumulators, RNG streams).
  void parallel_for_chunks(std::size_t begin, std::size_t end,
                           const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace supremm::common
