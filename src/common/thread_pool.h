// Work-sharing thread pool and deterministic parallel_for.
//
// The ETL pipeline and the facility simulator parallelize across nodes and
// jobs. Determinism rule (see DESIGN.md §7): parallel work items derive any
// randomness from stable ids, never from shared mutable generators, so the
// result of a parallel_for is identical for any thread count.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace supremm::common {

/// Fixed-size pool of worker threads executing submitted tasks FIFO.
class ThreadPool {
 public:
  /// `threads == 0` selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; the future resolves when it has run.
  template <typename F>
  [[nodiscard]] std::future<void> submit(F&& f) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<F>(f));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard lock(mu_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run fn(i) for i in [begin, end) across the pool in contiguous chunks and
  /// wait for completion. Exceptions from any chunk are rethrown (first one).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Chunked variant: fn(chunk_begin, chunk_end) — lets callers hoist
  /// per-chunk setup (thread-local accumulators, RNG streams).
  void parallel_for_chunks(std::size_t begin, std::size_t end,
                           const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Pool sized for `threads` (0 = hardware concurrency) when more than one
/// work unit exists; null — meaning "run inline" — otherwise. The warehouse
/// query engine and the archive codec use this so a thread count of 1 takes
/// the exact same code path with zero pool overhead.
[[nodiscard]] inline std::unique_ptr<ThreadPool> make_pool(std::size_t threads,
                                                           std::size_t units) {
  if (threads == 1 || units < 2) return nullptr;
  return std::make_unique<ThreadPool>(threads);
}

/// Run fn(i) for i in [0, n): inline on the calling thread when pool is
/// null, otherwise spread across the pool. Each index must touch only its
/// own output slot; the iteration order is unspecified under a pool, so
/// results are deterministic exactly when the units are independent.
inline void for_each_unit(ThreadPool* pool, std::size_t n,
                          const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  pool->parallel_for(0, n, fn);
}

}  // namespace supremm::common
