// Runtime ISA dispatch for the explicit SIMD kernel layer (DESIGN.md §15).
//
// The query engine and the archive codec ship scalar, SSE2 and AVX2 variants
// of their hot inner loops. One tier is selected per process — detected from
// cpuid on first use, overridable with SUPREMM_SIMD=scalar|sse2|avx2 for
// testing and with set_tier() from in-process tests. Every kernel pair is
// bit-identical by construction (integer kernels trivially; floating-point
// kernels via the canonical lane scheme in warehouse/kernels.h), so the tier
// never changes results, group order, QueryStats or archive bytes — only
// throughput.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace supremm::common::simd {

/// ISA tiers, ordered: a tier implies every lower one. On non-x86 builds the
/// hardware tier is kScalar and the vector kernels are compiled out.
enum class Tier : std::uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Best tier the running CPU supports (cpuid; cached after the first call).
[[nodiscard]] Tier hardware_tier() noexcept;

/// Tier kernels dispatch on: hardware_tier() clamped by the SUPREMM_SIMD
/// environment variable (read once, on first use; unrecognized values are
/// ignored) and by any set_tier() call. Never exceeds hardware_tier().
[[nodiscard]] Tier active_tier() noexcept;

/// Test hook: force `t` (clamped to hardware_tier()) for subsequent kernel
/// dispatch in this process. Not thread-safe against concurrent queries —
/// call it only from test setup, between runs.
void set_tier(Tier t) noexcept;

/// "scalar", "sse2" or "avx2".
[[nodiscard]] std::string_view tier_name(Tier t) noexcept;

/// Parse a tier name (the SUPREMM_SIMD syntax). Returns false — and leaves
/// `*out` alone — for anything unrecognized.
[[nodiscard]] bool parse_tier(std::string_view name, Tier* out) noexcept;

// --- archive codec kernels (integer → bit-identical across tiers) ---------

/// out[i] = bits(vals[i]) ^ bits(vals[i-1]), with `prev` standing in for
/// vals[-1]. The XOR-delta transform behind encode_f64_chunk.
void xor_delta_encode_f64(const double* vals, std::size_t n, std::uint64_t prev,
                          std::uint64_t* out);

/// Inverse transform: prefix-XOR little-endian words from `src` (unaligned,
/// n * 8 bytes) into doubles. Sequential dependence keeps it scalar, but the
/// single-bulk-load form replaces ByteReader's per-byte assembly.
void xor_delta_decode_f64(const unsigned char* src, std::size_t n, std::uint64_t prev,
                          double* out);

/// Length of the common prefix of a[0..limit) and b[0..limit). The caller
/// must guarantee at least 16 readable bytes at both pointers whenever
/// limit > 0 (the LZSS window always has them away from the stream tail);
/// the scalar tier never reads past the first mismatch or `limit`.
[[nodiscard]] std::size_t match_length(const unsigned char* a, const unsigned char* b,
                                       std::size_t limit) noexcept;

}  // namespace supremm::common::simd
