// Error types shared across the SUPReMM library.
#pragma once

#include <stdexcept>
#include <string>

namespace supremm::common {

/// Base class for all errors raised by the SUPReMM library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a serialized artifact (tacc_stats raw file, accounting log,
/// lariat record, syslog line) cannot be parsed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Raised when a query or computation is asked for data that does not exist
/// (unknown metric, empty table, missing column).
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error("not found: " + what) {}
};

/// Raised on API misuse (invalid argument combinations, out-of-range
/// configuration values).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error("invalid argument: " + what) {}
};

/// Raised when a low-level file operation fails (open/write/fsync/rename/
/// remove), real or injected; the message names the operation and path.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

/// Raised when an archive commit cannot complete (full filesystem, failed
/// rename, unwritable staging area); the message names the archive directory
/// and the failing operation. The archive handle keeps serving the
/// pre-commit state, and the next open rolls the aborted commit back.
class ArchiveError : public Error {
 public:
  explicit ArchiveError(const std::string& what) : Error("archive error: " + what) {}
};

/// Raised when a computation is abandoned because its CancelToken tripped
/// (explicit cancellation or an expired deadline). Partial results are
/// discarded by the thrower; catching this means "no answer", never "a
/// truncated answer".
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error("cancelled: " + what) {}
};

}  // namespace supremm::common

namespace supremm {
using common::ArchiveError;
using common::Cancelled;
using common::Error;
using common::InvalidArgument;
using common::IoError;
using common::NotFoundError;
using common::ParseError;
}  // namespace supremm
