#include "common/csv.h"

#include "common/strings.h"

namespace supremm::common {

std::string csv_quote(std::string_view v) {
  const bool needs = v.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs) return std::string(v);
  std::string out;
  out.reserve(v.size() + 2);
  out += '"';
  for (const char c : v) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (const auto& f : fields) emit(f);
  end_row();
}

CsvWriter& CsvWriter::field(std::string_view v) {
  emit(v);
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  emit(strprintf("%.6g", v));
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t v) {
  emit(strprintf("%lld", static_cast<long long>(v)));
  return *this;
}

void CsvWriter::end_row() {
  out_ << '\n';
  at_row_start_ = true;
}

void CsvWriter::emit(std::string_view v) {
  if (!at_row_start_) out_ << ',';
  out_ << csv_quote(v);
  at_row_start_ = false;
}

}  // namespace supremm::common
