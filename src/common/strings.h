// Small string utilities used by the log/record parsers and writers.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace supremm::common {

/// Split on a single character; empty fields are preserved.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s, char sep);

/// Split on runs of whitespace; empty fields are dropped.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view s);

/// Strip leading/trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

[[nodiscard]] bool starts_with(std::string_view s, std::string_view prefix);

/// Join with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Parse helpers; throw ParseError on malformed input.
[[nodiscard]] std::int64_t parse_i64(std::string_view s);
[[nodiscard]] std::uint64_t parse_u64(std::string_view s);
[[nodiscard]] double parse_f64(std::string_view s);

/// printf-style formatting into a std::string.
[[nodiscard]] std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace supremm::common
