// Shared work-stealing worker pool (DESIGN.md §15).
//
// ThreadPool (thread_pool.h) spawns threads per pool object, which is fine
// for the long-lived ETL pipeline but made the archive codec pay thread
// start-up and queue traffic on every encode/decode call — the source of the
// sub-1× "speedup" bench_archive measured at 8 threads. This pool is the
// architectural fix: one process-wide set of workers, jobs described as an
// index range pre-split into per-participant shards of contiguous batches,
// claims taken with a single fetch_add, and idle participants stealing whole
// batches from other shards. The caller always participates, so a job
// completes even when every worker is busy (including the nested case where
// a job is submitted from inside another job's unit function), and
// `threads == 1` runs inline with zero pool traffic.
//
// Determinism rule (DESIGN.md §7): unit functions write only to their own
// per-unit output slots. The pool guarantees each unit runs exactly once and
// that all writes are visible to the caller when run() returns; it makes no
// ordering promise beyond that.
#pragma once

#include <cstddef>
#include <functional>

namespace supremm::common {

class WorkerPool {
 public:
  /// `workers` may be 0 (every run() executes entirely on the caller).
  explicit WorkerPool(std::size_t workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t workers() const noexcept;

  /// Run fn(i) for every i in [0, n) and wait. `threads` caps participants
  /// (callers + helping workers): 1 runs inline on the caller, 0 means
  /// hardware concurrency. `grain` is the batch size in units — indices are
  /// claimed `grain` at a time so tiny units amortize claim traffic; 0
  /// selects a size targeting several batches per participant. The first
  /// exception thrown by a unit stops further claims and is rethrown here.
  void run(std::size_t n, std::size_t threads, std::size_t grain,
           const std::function<void(std::size_t)>& fn);

  /// Process-wide pool: hardware_concurrency - 1 workers (the caller is the
  /// remaining participant), created on first use.
  [[nodiscard]] static WorkerPool& shared();

 private:
  struct Impl;
  Impl* impl_;
};

/// shared().run(...) — the call sites' one-liner.
inline void pool_run(std::size_t n, std::size_t threads, std::size_t grain,
                     const std::function<void(std::size_t)>& fn) {
  WorkerPool::shared().run(n, threads, grain, fn);
}

}  // namespace supremm::common
