#include "common/checksum.h"

#include <array>

namespace supremm::common {

namespace {

constexpr std::array<std::uint32_t, 256> make_crc_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t n = 0; n < 256; ++n) {
    std::uint32_t c = n;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xedb88320u ^ (c >> 1) : c >> 1;
    }
    table[n] = c;
  }
  return table;
}

constexpr auto kCrcTable = make_crc_table();

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) noexcept {
  std::uint32_t c = seed ^ 0xffffffffu;
  for (const char ch : data) {
    c = kCrcTable[(c ^ static_cast<std::uint8_t>(ch)) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

}  // namespace supremm::common
