#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

namespace supremm::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  parallel_for_chunks(begin, end, [&fn](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) fn(i);
  });
}

void ThreadPool::parallel_for_chunks(std::size_t begin, std::size_t end,
                                     const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  // ~4 chunks per worker balances load without flooding the queue.
  const std::size_t target_chunks = std::max<std::size_t>(1, workers_.size() * 4);
  const std::size_t chunk = std::max<std::size_t>(1, (n + target_chunks - 1) / target_chunks);

  std::vector<std::future<void>> futures;
  futures.reserve((n + chunk - 1) / chunk);
  for (std::size_t b = begin; b < end; b += chunk) {
    const std::size_t e = std::min(end, b + chunk);
    futures.push_back(submit([&fn, b, e] { fn(b, e); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace supremm::common
