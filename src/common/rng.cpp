#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace supremm::common {

std::uint64_t hash_string(std::string_view s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

RngStream::RngStream(std::uint64_t seed, std::uint64_t stream_id)
    : engine_(splitmix64(splitmix64(seed) ^ splitmix64(stream_id ^ 0xa5a5a5a5a5a5a5a5ULL))) {}

RngStream::RngStream(std::uint64_t seed, std::string_view purpose, std::uint64_t index)
    : RngStream(seed, splitmix64(hash_string(purpose)) ^ index) {}

double RngStream::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double RngStream::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t RngStream::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double RngStream::normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

double RngStream::normal(double mean, double sd) {
  return std::normal_distribution<double>(mean, sd)(engine_);
}

double RngStream::lognormal(double mu, double sigma) {
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double RngStream::exponential(double mean) {
  if (mean <= 0.0) throw InvalidArgument("exponential mean must be positive");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

std::int64_t RngStream::poisson(double mean) {
  if (mean < 0.0) throw InvalidArgument("poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  return std::poisson_distribution<std::int64_t>(mean)(engine_);
}

bool RngStream::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return std::bernoulli_distribution(p)(engine_);
}

double RngStream::pareto(double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0) throw InvalidArgument("pareto parameters must be positive");
  const double u = 1.0 - uniform();  // in (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

std::size_t RngStream::weighted_index(const std::vector<double>& weights) {
  if (weights.empty()) throw InvalidArgument("weighted_index on empty weights");
  double total = 0.0;
  for (const double w : weights) total += w;
  if (total <= 0.0) throw InvalidArgument("weighted_index weights sum to zero");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<double> zipf_weights(std::size_t n, double s) {
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
  return w;
}

}  // namespace supremm::common
