#include "common/simd.h"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define SUPREMM_SIMD_X86 1
#endif

namespace supremm::common::simd {

namespace {

Tier detect_hardware() noexcept {
#ifdef SUPREMM_SIMD_X86
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return Tier::kAvx2;
  if (__builtin_cpu_supports("sse2")) return Tier::kSse2;
#endif
  return Tier::kScalar;
}

// -1 = not yet resolved. set_tier() writes directly; active_tier() resolves
// lazily from SUPREMM_SIMD so tests can set the variable before first use.
std::atomic<int> g_active{-1};

}  // namespace

Tier hardware_tier() noexcept {
  static const Tier t = detect_hardware();
  return t;
}

bool parse_tier(std::string_view name, Tier* out) noexcept {
  if (name == "scalar") {
    *out = Tier::kScalar;
  } else if (name == "sse2") {
    *out = Tier::kSse2;
  } else if (name == "avx2") {
    *out = Tier::kAvx2;
  } else {
    return false;
  }
  return true;
}

std::string_view tier_name(Tier t) noexcept {
  switch (t) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kSse2:
      return "sse2";
    case Tier::kAvx2:
      return "avx2";
  }
  return "scalar";
}

Tier active_tier() noexcept {
  const int cached = g_active.load(std::memory_order_relaxed);
  if (cached >= 0) return static_cast<Tier>(cached);
  Tier t = hardware_tier();
  if (const char* env = std::getenv("SUPREMM_SIMD")) {
    Tier wanted = t;
    if (parse_tier(env, &wanted) && wanted < t) t = wanted;
  }
  // First resolver wins; a concurrent set_tier() overrides via plain store.
  int expected = -1;
  g_active.compare_exchange_strong(expected, static_cast<int>(t), std::memory_order_relaxed);
  return static_cast<Tier>(g_active.load(std::memory_order_relaxed));
}

void set_tier(Tier t) noexcept {
  if (t > hardware_tier()) t = hardware_tier();
  g_active.store(static_cast<int>(t), std::memory_order_relaxed);
}

// --- XOR-delta f64 ---------------------------------------------------------

namespace {

void xor_encode_scalar(const double* vals, std::size_t n, std::uint64_t prev,
                       std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(vals[i]);
    out[i] = bits ^ prev;
    prev = bits;
  }
}

#ifdef SUPREMM_SIMD_X86

void xor_encode_sse2(const double* vals, std::size_t n, std::uint64_t prev,
                     std::uint64_t* out) {
  std::size_t i = 0;
  if (n != 0) {
    out[0] = std::bit_cast<std::uint64_t>(vals[0]) ^ prev;
    i = 1;
  }
  for (; i + 2 <= n; i += 2) {
    const __m128i cur = _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + i));
    const __m128i prv = _mm_loadu_si128(reinterpret_cast<const __m128i*>(vals + i - 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), _mm_xor_si128(cur, prv));
  }
  for (; i < n; ++i) {
    out[i] = std::bit_cast<std::uint64_t>(vals[i]) ^ std::bit_cast<std::uint64_t>(vals[i - 1]);
  }
}

__attribute__((target("avx2"))) void xor_encode_avx2(const double* vals, std::size_t n,
                                                     std::uint64_t prev, std::uint64_t* out) {
  std::size_t i = 0;
  if (n != 0) {
    out[0] = std::bit_cast<std::uint64_t>(vals[0]) ^ prev;
    i = 1;
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i cur = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i));
    const __m256i prv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vals + i - 1));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), _mm256_xor_si256(cur, prv));
  }
  for (; i < n; ++i) {
    out[i] = std::bit_cast<std::uint64_t>(vals[i]) ^ std::bit_cast<std::uint64_t>(vals[i - 1]);
  }
}

#endif  // SUPREMM_SIMD_X86

}  // namespace

void xor_delta_encode_f64(const double* vals, std::size_t n, std::uint64_t prev,
                          std::uint64_t* out) {
#ifdef SUPREMM_SIMD_X86
  switch (active_tier()) {
    case Tier::kAvx2:
      xor_encode_avx2(vals, n, prev, out);
      return;
    case Tier::kSse2:
      xor_encode_sse2(vals, n, prev, out);
      return;
    case Tier::kScalar:
      break;
  }
#endif
  xor_encode_scalar(vals, n, prev, out);
}

void xor_delta_decode_f64(const unsigned char* src, std::size_t n, std::uint64_t prev,
                          double* out) {
  // Prefix-XOR is a serial recurrence; the win over ByteReader::u64 is the
  // single bulk bounds check the caller already did plus word-width loads.
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t word;
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(&word, src + i * 8, 8);
    } else {
      word = 0;
      for (int b = 7; b >= 0; --b) word = (word << 8) | src[i * 8 + b];
    }
    prev ^= word;
    out[i] = std::bit_cast<double>(prev);
  }
}

// --- match length ----------------------------------------------------------

namespace {

std::size_t match_scalar(const unsigned char* a, const unsigned char* b,
                         std::size_t limit) noexcept {
  std::size_t len = 0;
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}

#ifdef SUPREMM_SIMD_X86

// One 16-byte compare covers the whole LZSS match range (kMaxMatch = 18):
// the first mismatch position comes from cmpeq + movemask + ctz, and only a
// full-width match longer than 16 falls back to byte extension.
std::size_t match_sse2(const unsigned char* a, const unsigned char* b,
                       std::size_t limit) noexcept {
  const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
  const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  const unsigned mask =
      static_cast<unsigned>(_mm_movemask_epi8(_mm_cmpeq_epi8(va, vb))) ^ 0xffffu;
  if (mask != 0) {
    const std::size_t len = static_cast<std::size_t>(std::countr_zero(mask));
    return len < limit ? len : limit;
  }
  if (limit <= 16) return limit;
  std::size_t len = 16;
  while (len < limit && a[len] == b[len]) ++len;
  return len;
}

#endif  // SUPREMM_SIMD_X86

}  // namespace

std::size_t match_length(const unsigned char* a, const unsigned char* b,
                         std::size_t limit) noexcept {
#ifdef SUPREMM_SIMD_X86
  if (active_tier() != Tier::kScalar) return match_sse2(a, b, limit);
#endif
  return match_scalar(a, b, limit);
}

}  // namespace supremm::common::simd
