#include "common/time.h"

#include <cstdio>

#include "common/error.h"

namespace supremm::common {

std::string format_time(TimePoint t) {
  const std::int64_t day = day_of(t);
  const Duration sod = second_of_day(t);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%lld+%02lld:%02lld:%02lld",
                static_cast<long long>(day), static_cast<long long>(sod / kHour),
                static_cast<long long>((sod % kHour) / kMinute),
                static_cast<long long>(sod % kMinute));
  return buf;
}

std::string format_duration(Duration d) {
  const bool neg = d < 0;
  if (neg) d = -d;
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s%02lld:%02lld:%02lld", neg ? "-" : "",
                static_cast<long long>(d / kHour),
                static_cast<long long>((d % kHour) / kMinute),
                static_cast<long long>(d % kMinute));
  return buf;
}

TimeAxis::TimeAxis(TimePoint start, Duration step, std::size_t count)
    : start_(start), step_(step), count_(count) {
  if (step <= 0) throw InvalidArgument("TimeAxis step must be positive");
}

std::size_t TimeAxis::index_at(TimePoint t) const noexcept {
  if (count_ == 0 || t < start_) return npos;
  const auto i = static_cast<std::size_t>((t - start_) / step_);
  return i >= count_ ? count_ - 1 : i;
}

}  // namespace supremm::common
