// CSV emission for report renderers and bench outputs.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace supremm::common {

/// Streams rows of comma separated values with RFC-4180-style quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  /// Write a full row; fields containing comma/quote/newline are quoted.
  void row(const std::vector<std::string>& fields);

  /// Incremental interface.
  CsvWriter& field(std::string_view v);
  CsvWriter& field(double v);
  CsvWriter& field(std::int64_t v);
  void end_row();

 private:
  void emit(std::string_view v);
  std::ostream& out_;
  bool at_row_start_ = true;
};

/// Quote a single CSV field if needed.
[[nodiscard]] std::string csv_quote(std::string_view v);

}  // namespace supremm::common
