#include "common/pool.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace supremm::common {

namespace {

/// A contiguous range of batch indices owned by one participant. `next` is
/// claimed with fetch_add by the owner and by stealers alike, so a batch is
/// executed exactly once no matter who gets it.
struct Shard {
  std::atomic<std::size_t> next{0};
  std::size_t end = 0;
};

struct Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t units = 0;
  std::size_t grain = 1;
  std::vector<Shard> shards;
  std::atomic<std::size_t> joined{0};  // participate() calls; picks a home shard
  std::atomic<bool> failed{false};
  std::exception_ptr error;  // guarded by the pool mutex
  // Guarded by the pool mutex: helpers currently inside participate(), and
  // the participant cap (caller + helpers).
  std::size_t active_helpers = 0;
  std::size_t participants = 1;  // the caller
  std::size_t max_participants = 1;
};

}  // namespace

struct WorkerPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;  // workers: a job was posted / shutting down
  std::condition_variable done_cv;  // callers: a helper left a job
  std::vector<Job*> jobs;           // jobs that may still have claimable batches
  std::vector<std::thread> threads;
  bool stop = false;

  void unlist(Job* job) {  // caller holds mu
    const auto it = std::find(jobs.begin(), jobs.end(), job);
    if (it != jobs.end()) jobs.erase(it);
  }

  // Drain one job: claim batches from the home shard, then steal. Returns
  // with no claimable work left in any shard (or the job failed).
  void participate(Job& job) {
    const std::size_t nshards = job.shards.size();
    const std::size_t home = job.joined.fetch_add(1, std::memory_order_relaxed) % nshards;
    for (std::size_t k = 0; k < nshards; ++k) {
      Shard& shard = job.shards[(home + k) % nshards];
      while (!job.failed.load(std::memory_order_relaxed)) {
        const std::size_t batch = shard.next.fetch_add(1, std::memory_order_relaxed);
        if (batch >= shard.end) break;
        const std::size_t begin = batch * job.grain;
        const std::size_t end = std::min(job.units, begin + job.grain);
        try {
          for (std::size_t i = begin; i < end; ++i) (*job.fn)(i);
        } catch (...) {
          std::lock_guard lock(mu);
          if (!job.error) job.error = std::current_exception();
          job.failed.store(true, std::memory_order_relaxed);
        }
      }
    }
  }

  void worker_loop() {
    std::unique_lock lock(mu);
    std::size_t rr = 0;  // round-robin over concurrent jobs
    while (true) {
      work_cv.wait(lock, [this] { return stop || !jobs.empty(); });
      if (stop) return;
      Job* job = jobs[rr++ % jobs.size()];
      if (job->participants >= job->max_participants) {
        // Full house; drop the job from the list so this worker does not
        // spin on it. The participants already in keep draining it.
        unlist(job);
        continue;
      }
      ++job->participants;
      ++job->active_helpers;
      lock.unlock();
      participate(*job);
      lock.lock();
      // No claimable batches remain (claims only ever move forward), so
      // stop offering the job to other workers.
      unlist(job);
      --job->active_helpers;
      done_cv.notify_all();
    }
  }
};

WorkerPool::WorkerPool(std::size_t workers) : impl_(new Impl) {
  impl_->threads.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    impl_->threads.emplace_back([impl = impl_] { impl->worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& t : impl_->threads) t.join();
  delete impl_;
}

std::size_t WorkerPool::workers() const noexcept { return impl_->threads.size(); }

void WorkerPool::run(std::size_t n, std::size_t threads, std::size_t grain,
                     const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads == 0) threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t max_parts =
      std::min(threads, impl_->threads.size() + 1);  // caller + workers
  if (max_parts <= 1 || n < 2) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  if (grain == 0) {
    // A few batches per participant: enough slack for stealing to balance
    // load, coarse enough that tiny units do not live on the claim counter.
    grain = std::max<std::size_t>(1, n / (max_parts * 8));
  }
  const std::size_t nbatches = (n + grain - 1) / grain;

  Job job;
  job.fn = &fn;
  job.units = n;
  job.grain = grain;
  job.max_participants = max_parts;
  const std::size_t nshards = std::min(max_parts, nbatches);
  job.shards = std::vector<Shard>(nshards);
  const std::size_t per = nbatches / nshards;
  const std::size_t extra = nbatches % nshards;
  std::size_t next = 0;
  for (std::size_t s = 0; s < nshards; ++s) {
    const std::size_t take = per + (s < extra ? 1 : 0);
    job.shards[s].next.store(next, std::memory_order_relaxed);
    job.shards[s].end = next + take;
    next += take;
  }

  {
    std::lock_guard lock(impl_->mu);
    impl_->jobs.push_back(&job);
  }
  impl_->work_cv.notify_all();

  impl_->participate(job);

  std::unique_lock lock(impl_->mu);
  impl_->unlist(&job);  // no claimable work left; late workers must not see it
  impl_->done_cv.wait(lock, [&job] { return job.active_helpers == 0; });
  if (job.error) {
    const std::exception_ptr err = job.error;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

WorkerPool& WorkerPool::shared() {
  static WorkerPool pool(
      std::thread::hardware_concurrency() > 1 ? std::thread::hardware_concurrency() - 1 : 0);
  return pool;
}

}  // namespace supremm::common
