// Cooperative cancellation for long-running scans (DESIGN.md §13).
//
// A CancelToken is shared between a request owner (who may cancel, or set a
// deadline) and a worker executing on its behalf. Workers poll
// stop_requested() at coarse-grained safe points — the warehouse query
// engine checks once per scan chunk and once per aggregation segment, never
// per row — and abandon the work by throwing common::Cancelled. Both sides
// only touch atomics, so a token may be cancelled from any thread while the
// worker is mid-scan.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace supremm::common {

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Request cancellation; safe from any thread, idempotent.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Arm a deadline; stop_requested() turns true once the clock passes it.
  void set_deadline(Clock::time_point tp) noexcept {
    deadline_ns_.store(tp.time_since_epoch().count(), std::memory_order_relaxed);
  }

  [[nodiscard]] bool deadline_expired() const noexcept {
    const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
    return d != 0 && Clock::now().time_since_epoch().count() > d;
  }

  /// True once the owner cancelled or the armed deadline passed. Workers
  /// poll this at chunk/segment granularity.
  [[nodiscard]] bool stop_requested() const noexcept {
    return cancelled() || deadline_expired();
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<std::int64_t> deadline_ns_{0};  // Clock ns since epoch; 0 = none
};

}  // namespace supremm::common
