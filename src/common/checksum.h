// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) for archive block and manifest
// integrity checks. Table driven, byte at a time; fast enough for the block
// sizes the archive writes (tens of KiB) and self-contained.
#pragma once

#include <cstdint>
#include <string_view>

namespace supremm::common {

/// CRC-32 of `data`, optionally continuing from a previous value (pass the
/// prior return value as `seed` to checksum a stream in pieces).
[[nodiscard]] std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0) noexcept;

}  // namespace supremm::common
