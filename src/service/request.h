// The service request language (DESIGN.md §13).
//
// Clients talk to the query service in a small line-oriented text language
// rather than through C++ closures, for three reasons: requests can travel
// (logs, benchmarks, replay files), they canonicalize (the result cache keys
// on the canonical text, so syntactic variation never splits cache entries),
// and the testkit can generate them from the same grammar streams it already
// uses for QuerySpecs and replay any served request through the oracle.
//
// Grammar (keywords lowercase, one request per string):
//
//   request := query | report
//   query   := "query" ident
//              [ "where" term ( "and" term )* ]
//              [ "group" ident ( "," ident )* ]
//              "agg" agg ( "," agg )*
//              [ "threads" uint ]
//   report  := "report" "jobs" "dimension" ident
//              "stats" ident ( "," ident )*
//              [ "filter" ident "=" string ]
//              [ "sort" ident ] [ "limit" uint ] [ "threads" uint ]
//   term    := ident "=" string | ident ">=" num | ident "<=" num
//            | ident "between" num "and" num
//   agg     := ("sum"|"mean"|"max"|"min") "(" ident ")" [ "as" ident ]
//            | "wmean" "(" ident "," ident ")" [ "as" ident ]
//            | "count" "(" ")" [ "as" ident ]
//
// Numbers accept anything strtod does (including "inf", "-inf", "nan");
// strings are double-quoted with \" and \\ escapes; idents are
// [A-Za-z_][A-Za-z0-9_]*.
//
// Canonical form: print_request() emits keywords in grammar order, single
// spaces between tokens, list items joined with ",", and finite doubles via
// %.17g — which strtod round-trips bit-exactly, so
// print(parse(print(r))) == print(r) for every request. The only lossy spot
// is NaN payloads in predicate thresholds ("nan" reparses to the default
// quiet NaN), which is behavior-preserving: every NaN comparison is false.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "warehouse/query.h"
#include "xdmod/realm.h"

namespace supremm::service {

enum class TermOp : std::uint8_t { kEq, kGe, kLe, kBetween };

/// One WHERE conjunct.
struct Term {
  TermOp op = TermOp::kGe;
  std::string column;
  std::string value;  // kEq literal (string columns)
  double lo = 0.0;    // kGe / kBetween
  double hi = 0.0;    // kLe / kBetween
};

/// Canonical form of a `query` request: a closure-free warehouse query
/// against one named service table.
struct QuerySpec {
  std::string table;
  std::vector<Term> where;
  std::vector<std::string> group_by;
  std::vector<warehouse::AggSpec> aggs;
  std::size_t threads = 1;
};

/// A parsed request: either a raw warehouse query or an XDMoD jobs-realm
/// report (canonical ReportSpec).
struct Request {
  enum class Kind : std::uint8_t { kQuery, kReport };
  Kind kind = Kind::kQuery;
  QuerySpec query;
  xdmod::JobsRealm::ReportSpec report;
};

/// Parse one request. Throws common::ParseError with the token position
/// ("request:17: expected ...") on malformed input.
[[nodiscard]] Request parse_request(std::string_view text);

/// Canonical text of a request; parse_request(print_request(r)) reproduces r.
[[nodiscard]] std::string print_request(const Request& req);

/// print(parse(text)): the cache key normalization.
[[nodiscard]] std::string canonical_text(std::string_view text);

/// Compile the query form into a ready-to-run warehouse::Query against
/// `table` (predicates, group keys, aggregations, threads — the caller adds
/// the cancel token). Throws NotFoundError / InvalidArgument for unknown or
/// mistyped columns, exactly as Query::run would.
[[nodiscard]] warehouse::Query compile(const QuerySpec& spec,
                                       const warehouse::Table& table);

}  // namespace supremm::service
