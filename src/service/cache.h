// Watermark-keyed LRU result cache (DESIGN.md §13).
//
// Keys are "<canonical request text>#<epoch>": the canonical text collapses
// syntactic variation (the parser/printer round trip), and the epoch — a
// counter the service bumps every time new data is published or an archive
// append lands — pins the entry to exactly one data state. Invalidation is
// therefore structural: an append changes the epoch, every new lookup misses,
// and the stale entries age out of the LRU tail. A hit can never be served
// across an append, so a cached answer is always bit-identical to a fresh
// run against the same snapshot.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "warehouse/query.h"
#include "warehouse/table.h"

namespace supremm::service {

/// A cached response payload: the result table (shared with every response
/// that hit this entry) and the scan statistics of the run that produced it.
struct CachedResult {
  std::shared_ptr<const warehouse::Table> table;
  warehouse::QueryStats stats;
};

/// Thread-safe LRU map; all methods may be called concurrently.
class ResultCache {
 public:
  /// `capacity` = max entries; 0 disables the cache (every lookup misses,
  /// inserts are dropped).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Hit moves the entry to the front and returns a copy of the payload.
  [[nodiscard]] std::optional<CachedResult> lookup(const std::string& key);

  /// Insert (or refresh) an entry, evicting from the LRU tail over capacity.
  void insert(const std::string& key, CachedResult value);

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
  };
  [[nodiscard]] Counters counters() const;

 private:
  struct Entry {
    CachedResult value;
    std::list<std::string>::iterator order_it;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<std::string> order_;  // front = most recently used
  std::unordered_map<std::string, Entry> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace supremm::service
