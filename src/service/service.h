// The embedded query/report service (DESIGN.md §13).
//
// The paper's warehouse is consumed through a web portal by many concurrent
// stakeholders (§4.3); this module is the C++ stand-in for that serving
// tier. A Service owns an immutable snapshot of the published data (named
// warehouse tables plus the XDMoD jobs realm), a bounded worker pool, and a
// watermark-keyed LRU result cache. Clients open lightweight Sessions and
// submit requests in the textual request language (request.h); each submit
// returns a Ticket that can be waited on or cancelled.
//
// Admission and fairness: all sessions feed one global FIFO queue served by
// `workers` threads, so requests execute in arrival order regardless of
// which client sent them. When the queue holds `queue_limit` pending
// requests, new submits are rejected immediately (Status::kRejected) instead
// of building unbounded backlog. Every request carries a deadline (the
// config default unless the submit overrides it); the deadline is checked
// when the request is dequeued (Status::kTimedOut without running) and then
// cooperatively during execution via the CancelToken plumbed into the
// warehouse executor's chunk/segment safe points.
//
// Caching: responses that complete with Status::kOk are stored in the LRU
// cache under "<canonical text>#<epoch>". The epoch is bumped by every
// publish_* call and by every archive append (bind_archive subscribes to
// Archive::on_append), so a cached answer can only ever be served against
// the exact data state that produced it — cache hits are bit-identical to
// fresh runs by construction, which the service test suite asserts with the
// testkit's table-identity oracle.
//
// Consistency: a request binds to the snapshot current at submit time. A
// publish during execution does not disturb in-flight requests (snapshots
// are immutable and shared_ptr-held); their responses are simply cached
// under the old epoch, where no future lookup will find them.
//
// Graceful degradation (DESIGN.md §14): when an archive-triggered republish
// fails — the load throws, or partitions come back quarantined after an
// append — the service keeps the last good snapshot and enters degraded
// mode instead of erroring: every response (cache hit or fresh run against
// the retained snapshot) is served with Status::kStale, explicitly flagging
// that the data predates the failed republish, and metrics expose the
// degraded flag plus a stale_served counter. Republish is retried with
// bounded exponential backoff on the submit path (at most
// stale_retry_limit attempts) and on explicit refresh(); the first success
// publishes the fresh snapshot and clears stale mode.
#pragma once

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "archive/archive.h"
#include "common/cancel.h"
#include "common/time.h"
#include "etl/job_summary.h"
#include "service/cache.h"
#include "service/request.h"
#include "warehouse/query.h"
#include "warehouse/table.h"
#include "xdmod/realm.h"

namespace supremm::service {

struct ServiceConfig {
  /// Worker threads executing requests (the serving parallelism; each
  /// request may additionally use its own `threads` setting inside the
  /// warehouse executor).
  int workers = 2;
  /// Pending requests admitted before submits are rejected.
  int queue_limit = 64;
  /// LRU result-cache capacity in entries; 0 disables caching.
  int cache_entries = 128;
  /// Default per-request deadline, applied when a submit does not override.
  std::int64_t default_deadline_ms = 30'000;
  /// Bounded republish retries while degraded: at most this many automatic
  /// re-attempts (submit-path, backoff-spaced) before only an explicit
  /// refresh() can recover. 0 disables automatic retry.
  int stale_retry_limit = 3;
  /// Base backoff between automatic republish retries; doubles per failed
  /// attempt (50, 100, 200, ... ms).
  std::int64_t stale_retry_backoff_ms = 50;
  /// Maintain rollup tables on publish and serve subsumable jobs queries
  /// from them (DESIGN.md §16). Disabling skips the build and the serving
  /// path — every query runs the raw scan. The jobs table is augmented and
  /// time-partitioned either way, so the query surface (bucket columns) and
  /// the aggregation contract — hence every result — are identical.
  /// SUPREMM_ROLLUP=off additionally disables serving at runtime without
  /// rebuilding snapshots.
  bool rollups = true;

  /// Throws InvalidArgument naming the offending field: workers, queue_limit,
  /// default_deadline_ms and stale_retry_backoff_ms must be positive;
  /// cache_entries and stale_retry_limit non-negative.
  void validate() const;
};

enum class Status : std::uint8_t {
  kOk,         // result table attached
  kRejected,   // admission queue full; never executed
  kTimedOut,   // deadline expired (in queue or mid-execution)
  kCancelled,  // Ticket::cancel() observed (in queue or mid-execution)
  kError,      // parse error, unknown table/column, service stopped, ...
  kStale,      // result table attached, but served from the retained
               // pre-failure snapshot while the service is degraded
  kPartial,    // federated result table attached, but one or more shards
               // timed out or errored; the error field names them
};
[[nodiscard]] const char* to_string(Status s);

/// The outcome of one request. Immutable once published to the Ticket.
struct Response {
  Status status = Status::kError;
  std::string client;
  std::string canonical;  // canonical request text; empty if parsing failed
  std::string error;      // diagnostic for non-kOk statuses
  bool cache_hit = false;
  std::uint64_t epoch = 0;             // snapshot the request bound to
  common::TimePoint watermark = 0;     // that snapshot's ingest watermark
  std::shared_ptr<const warehouse::Table> table;  // kOk / kStale only
  warehouse::QueryStats stats;  // kOk/kStale query path (zero for reports/hits)
  double queue_ms = 0.0;  // submit -> dequeue (0 for immediate responses)
  double exec_ms = 0.0;   // dequeue -> finished
  double total_ms = 0.0;  // submit -> finished
};
using ResponsePtr = std::shared_ptr<const Response>;

struct Job;  // internal; defined in service.cpp

/// Handle to one in-flight request. Copyable; all copies share the request.
class Ticket {
 public:
  Ticket() = default;

  /// Block until the response is ready. Never throws on request failure —
  /// failures are Status values. Calling wait() on a default-constructed
  /// Ticket throws InvalidArgument.
  [[nodiscard]] ResponsePtr wait() const;

  /// Request cooperative cancellation: takes effect at the next queue or
  /// executor safe point. No-op once the response is ready.
  void cancel();

 private:
  friend class Service;
  explicit Ticket(std::shared_ptr<Job> job) : job_(std::move(job)) {}
  std::shared_ptr<Job> job_;
};

class Service;

/// A client's handle on the service: a name for metrics/diagnostics plus
/// submit convenience. Sessions are cheap value types; the Service must
/// outlive every Session it issued.
class Session {
 public:
  /// Submit one request. `deadline_ms` overrides the config default
  /// (0 = use default; negative throws InvalidArgument). Never blocks on
  /// execution: queue-full, parse errors and cache hits resolve the Ticket
  /// immediately.
  Ticket submit(std::string_view text, std::int64_t deadline_ms = 0);

  /// submit() + wait().
  ResponsePtr run(std::string_view text, std::int64_t deadline_ms = 0);

  [[nodiscard]] const std::string& client() const noexcept { return client_; }

 private:
  friend class Service;
  Session(Service* svc, std::string client)
      : service_(svc), client_(std::move(client)) {}
  Service* service_;
  std::string client_;
};

// ---------------------------------------------------------------------------
// Federation seam (DESIGN.md §17)
//
// The service stays ignorant of shard catalogs, wire formats and transports:
// a bound RemoteExecutor claims one table name and answers compiled
// QuerySpecs for it with an already-merged result table plus per-shard
// accounting. federation::Federation is the production implementation; the
// inversion keeps the dependency arrow federation -> service.

/// What happened at one shard of a federated scatter-gather.
struct RemoteShardReport {
  enum class Outcome : std::uint8_t {
    kOk,        // partial received and merged
    kPruned,    // catalog bounds excluded the shard; never contacted
    kTimedOut,  // per-shard deadline expired (transport or executor)
    kError,     // transport/protocol/executor failure; see `error`
  };
  std::string shard;
  Outcome outcome = Outcome::kOk;
  bool rollup_served = false;   // shard answered from its RollupSet
  std::string error;            // sourced diagnostic for kTimedOut/kError
  warehouse::QueryStats stats;  // shard-side scan accounting (kOk only)
  double ms = 0.0;              // exchange wall time (0 when pruned)
};
[[nodiscard]] const char* to_string(RemoteShardReport::Outcome o);

/// A merged federated answer. `complete` is false when any contacted shard
/// failed; the table then covers only the shards that answered.
struct RemoteResult {
  std::shared_ptr<const warehouse::Table> table;
  bool complete = true;
  warehouse::QueryStats stats;            // summed over merged shard partials
  std::vector<RemoteShardReport> shards;  // catalog order, pruned included
};

class RemoteExecutor {
 public:
  virtual ~RemoteExecutor() = default;
  /// The one table name this executor serves (queries against other tables
  /// keep using the local snapshot).
  [[nodiscard]] virtual const std::string& table_name() const = 0;
  /// Scatter the spec, gather and merge. Throws when no shard answered
  /// (the service responds kError); degrades to complete=false when some did.
  [[nodiscard]] virtual RemoteResult run(const QuerySpec& spec) const = 0;
};

/// Power-of-two-bucketed latency histogram (microsecond buckets). quantile()
/// returns the upper bound of the bucket holding that rank — an upper bound
/// on the true quantile, within 2x of it.
class LatencyHistogram {
 public:
  void add(double ms);
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double mean_ms() const noexcept {
    return count_ == 0 ? 0.0 : sum_ms_ / static_cast<double>(count_);
  }
  [[nodiscard]] double max_ms() const noexcept { return max_ms_; }
  [[nodiscard]] double quantile_ms(double q) const;

 private:
  static constexpr std::size_t kBuckets = 40;  // bucket i: [2^(i-1), 2^i) us
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  double sum_ms_ = 0.0;
  double max_ms_ = 0.0;
};

/// Point-in-time service counters; to_json() renders the export format.
struct ServiceMetrics {
  std::uint64_t epoch = 0;
  std::uint64_t submitted = 0;
  std::uint64_t parse_errors = 0;
  std::uint64_t completed = 0;  // Status::kOk responses (incl. cache hits)
  std::uint64_t rejected = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t errors = 0;
  std::uint64_t stale_served = 0;        // responses flagged Status::kStale
  std::uint64_t republish_failures = 0;  // failed archive republish attempts
  bool degraded = false;                 // serving the retained stale snapshot
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
  std::size_t cache_entries = 0;
  bool rollups_enabled = false;        // snapshot has rollups and serving is on
  std::uint64_t rollup_hits = 0;       // queries answered from rollup cells
  std::uint64_t rollup_misses = 0;     // jobs queries that fell back to a scan
  std::uint64_t rollup_rebuilds = 0;   // snapshots whose rollups were rebuilt
                                       // from the jobs table (archive had none)
  std::size_t rollup_cells = 0;        // cells across the snapshot's levels
  bool federation_bound = false;       // a RemoteExecutor is installed
  std::uint64_t federated = 0;         // queries routed to the remote executor
  std::uint64_t federated_partial = 0; // degraded federated answers (kPartial)
  /// Aggregated per-shard outcome counters, keyed by shard name.
  struct ShardCounters {
    std::uint64_t ok = 0;
    std::uint64_t pruned = 0;
    std::uint64_t rollup_served = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t errors = 0;
    double total_ms = 0.0;
  };
  std::map<std::string, ShardCounters> shards;
  std::size_t queue_depth = 0;
  std::size_t queue_peak = 0;
  LatencyHistogram queue_wait_ms;
  LatencyHistogram exec_ms;
  LatencyHistogram total_ms;
};
[[nodiscard]] std::string to_json(const ServiceMetrics& m);

class Service {
 public:
  /// Validates the config and starts the worker pool.
  explicit Service(ServiceConfig cfg);

  /// Drains: workers finish every already-queued request (cancelled or
  /// expired ones resolve fast at their dequeue check) before joining.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  /// Publish a new immutable snapshot of named tables (no jobs realm, so
  /// `report` requests will fail until publish_jobs/bind_archive). Bumps the
  /// epoch; in-flight requests keep their old snapshot.
  void publish_tables(std::map<std::string, warehouse::Table> tables,
                      common::TimePoint watermark = 0);

  /// Publish job summaries: builds the lossless "jobs" table (zone-indexed)
  /// and the XDMoD jobs realm for `report` requests. Bumps the epoch. Jobs
  /// are canonicalized to ascending-id order first (the order Archive::load
  /// restores), so callers may pass them in any order.
  void publish_jobs(std::vector<etl::JobSummary> jobs,
                    common::TimePoint watermark = 0);

  /// Load the archive ("jobs", "series" and "data_quality" tables plus the
  /// jobs realm, watermark from the manifest) and subscribe to
  /// Archive::on_append so every append republishes automatically — the
  /// append invalidates all cached results by bumping the epoch. The archive
  /// must outlive this service.
  void bind_archive(archive::Archive& ar);

  /// Route queries against `remote->table_name()` through a federated
  /// executor instead of the local snapshot. Complete answers behave exactly
  /// like local kOk responses (cached under the current epoch, kStale while
  /// degraded); incomplete ones respond Status::kPartial and are never
  /// cached. Publishes an empty snapshot if nothing was published yet, so a
  /// purely-federated service admits queries. Passing nullptr unbinds.
  void bind_remote(std::shared_ptr<const RemoteExecutor> remote);

  /// Epoch of the current snapshot (0 = nothing published yet).
  [[nodiscard]] std::uint64_t epoch() const;

  /// Is the service serving the retained stale snapshot because the last
  /// archive republish failed?
  [[nodiscard]] bool degraded() const;

  /// Explicitly re-attempt the archive republish (no-op unless bound to an
  /// archive). Returns true if the service is healthy afterwards; a success
  /// clears degraded mode and resets the automatic-retry budget.
  bool refresh();

  [[nodiscard]] Session session(std::string client) {
    return Session(this, std::move(client));
  }

  [[nodiscard]] ServiceMetrics metrics() const;
  /// metrics() rendered as a JSON object.
  [[nodiscard]] std::string metrics_json() const;

  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }

 private:
  friend class Session;
  friend struct Job;
  struct Snapshot;  // defined in service.cpp

  Ticket submit(const std::string& client, std::string_view text,
                std::int64_t deadline_ms);
  void worker_loop();
  void execute(Job& job);
  void finish(Job& job, Response r);
  void publish_snapshot(std::shared_ptr<Snapshot> snap);
  [[nodiscard]] std::shared_ptr<const Snapshot> snapshot() const;
  /// One republish attempt; on failure records it and (re)enters degraded
  /// mode. Returns true when the service is healthy afterwards.
  bool try_republish();
  /// Submit-path retry gate: attempt a republish only while degraded, within
  /// the bounded retry budget, and past the current backoff window.
  void maybe_retry_republish();

  ServiceConfig cfg_;
  ResultCache cache_;

  mutable std::mutex snap_mu_;
  std::shared_ptr<const Snapshot> snap_;
  std::uint64_t epoch_ = 0;  // guarded by snap_mu_
  std::shared_ptr<const RemoteExecutor> remote_;  // guarded by snap_mu_

  mutable std::mutex degraded_mu_;  // guards the republish/degraded state
  std::function<void()> republish_;  // set by bind_archive; throws on failure
  bool degraded_ = false;
  std::string degraded_reason_;
  int retries_used_ = 0;
  std::chrono::steady_clock::time_point next_retry_{};

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<Job>> queue_;  // guarded by queue_mu_
  std::size_t queue_peak_ = 0;              // guarded by queue_mu_
  bool stopping_ = false;                   // guarded by queue_mu_

  mutable std::mutex metrics_mu_;
  ServiceMetrics counters_;  // histograms + counts, guarded by metrics_mu_

  std::vector<std::thread> workers_;
};

}  // namespace supremm::service
