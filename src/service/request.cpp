#include "service/request.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/error.h"
#include "common/strings.h"

namespace supremm::service {

using warehouse::AggKind;
using warehouse::AggSpec;

namespace {

// --- lexer -----------------------------------------------------------------

enum class TokKind : std::uint8_t { kIdent, kNumber, kString, kPunct, kEnd };

struct Token {
  TokKind kind = TokKind::kEnd;
  std::string text;     // ident name, punct spelling, or raw number text
  std::string literal;  // unescaped string payload (kString)
  std::size_t pos = 0;  // byte offset, for error messages
};

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw common::ParseError("request:" + std::to_string(pos) + ": " + what);
}

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }
bool number_start(char c) { return (c >= '0' && c <= '9') || c == '-' || c == '+' || c == '.'; }

std::vector<Token> lex(std::string_view text) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      ++i;
      continue;
    }
    Token tok;
    tok.pos = i;
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < text.size() && ident_char(text[j])) ++j;
      tok.kind = TokKind::kIdent;
      tok.text = std::string(text.substr(i, j - i));
      i = j;
    } else if (number_start(c)) {
      // Greedy number atom; letters ride along so "-inf", "nan" (via ident
      // above), "1e-5" and "0x..." junk all land in parse_f64, which
      // rejects anything strtod does not fully consume.
      std::size_t j = i + 1;
      while (j < text.size() &&
             (ident_char(text[j]) || text[j] == '.' ||
              ((text[j] == '+' || text[j] == '-') &&
               (text[j - 1] == 'e' || text[j - 1] == 'E')))) {
        ++j;
      }
      tok.kind = TokKind::kNumber;
      tok.text = std::string(text.substr(i, j - i));
      i = j;
    } else if (c == '"') {
      std::string payload;
      std::size_t j = i + 1;
      for (;; ++j) {
        if (j >= text.size()) fail(i, "unterminated string literal");
        if (text[j] == '\\') {
          if (j + 1 >= text.size()) fail(i, "unterminated string literal");
          const char e = text[j + 1];
          if (e != '"' && e != '\\') fail(j, "unknown escape in string literal");
          payload.push_back(e);
          ++j;
        } else if (text[j] == '"') {
          break;
        } else {
          payload.push_back(text[j]);
        }
      }
      tok.kind = TokKind::kString;
      tok.literal = std::move(payload);
      i = j + 1;
    } else if (c == '(' || c == ')' || c == ',' || c == '=') {
      tok.kind = TokKind::kPunct;
      tok.text = std::string(1, c);
      ++i;
    } else if ((c == '>' || c == '<') && i + 1 < text.size() && text[i + 1] == '=') {
      tok.kind = TokKind::kPunct;
      tok.text = std::string(text.substr(i, 2));
      i += 2;
    } else {
      fail(i, std::string("unexpected character '") + c + "'");
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokKind::kEnd;
  end.pos = text.size();
  out.push_back(std::move(end));
  return out;
}

// --- parser ----------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::string_view text) : toks_(lex(text)) {}

  const Token& peek() const { return toks_[i_]; }
  const Token& next() { return toks_[i_++]; }

  bool at_ident(std::string_view word) const {
    return peek().kind == TokKind::kIdent && peek().text == word;
  }
  bool eat_ident(std::string_view word) {
    if (!at_ident(word)) return false;
    ++i_;
    return true;
  }
  std::string expect_ident(const char* what) {
    if (peek().kind != TokKind::kIdent) fail(peek().pos, std::string("expected ") + what);
    return next().text;
  }
  void expect_keyword(std::string_view word) {
    if (!eat_ident(word)) {
      fail(peek().pos, "expected '" + std::string(word) + "'");
    }
  }
  void expect_punct(std::string_view p) {
    if (peek().kind != TokKind::kPunct || peek().text != p) {
      fail(peek().pos, "expected '" + std::string(p) + "'");
    }
    ++i_;
  }
  bool eat_punct(std::string_view p) {
    if (peek().kind == TokKind::kPunct && peek().text == p) {
      ++i_;
      return true;
    }
    return false;
  }
  double expect_number() {
    const Token& t = peek();
    // "inf" / "nan" lex as idents; strtod accepts both spellings.
    if (t.kind != TokKind::kNumber && t.kind != TokKind::kIdent) {
      fail(t.pos, "expected a number");
    }
    // Not common::parse_f64: that treats strtod's ERANGE as malformed, but
    // predicate thresholds legitimately take denormal (underflow) and
    // overflow spellings — strtod still returns the correctly rounded
    // double, which is exactly what %.17g printing needs to round-trip.
    char buf[64];
    if (t.text.empty() || t.text.size() >= sizeof(buf)) {
      fail(t.pos, "malformed number '" + t.text + "'");
    }
    t.text.copy(buf, t.text.size());
    buf[t.text.size()] = '\0';
    char* end = nullptr;
    const double v = std::strtod(buf, &end);
    if (end != buf + t.text.size()) {
      fail(t.pos, "malformed number '" + t.text + "'");
    }
    ++i_;
    return v;
  }
  std::uint64_t expect_uint(const char* what) {
    const Token& t = peek();
    if (t.kind != TokKind::kNumber) fail(t.pos, std::string("expected ") + what);
    std::uint64_t v = 0;
    try {
      v = common::parse_u64(t.text);
    } catch (const common::ParseError&) {
      fail(t.pos, std::string("malformed ") + what + " '" + t.text + "'");
    }
    ++i_;
    return v;
  }
  std::string expect_string(const char* what) {
    if (peek().kind != TokKind::kString) {
      fail(peek().pos, std::string("expected a quoted ") + what);
    }
    return next().literal;
  }
  void expect_end() {
    if (peek().kind != TokKind::kEnd) {
      fail(peek().pos, "trailing input after request");
    }
  }

 private:
  std::vector<Token> toks_;
  std::size_t i_ = 0;
};

Term parse_term(Parser& p) {
  Term t;
  t.column = p.expect_ident("a column name");
  if (p.eat_punct("=")) {
    t.op = TermOp::kEq;
    t.value = p.expect_string("string literal");
  } else if (p.eat_punct(">=")) {
    t.op = TermOp::kGe;
    t.lo = p.expect_number();
  } else if (p.eat_punct("<=")) {
    t.op = TermOp::kLe;
    t.hi = p.expect_number();
  } else if (p.eat_ident("between")) {
    t.op = TermOp::kBetween;
    t.lo = p.expect_number();
    p.expect_keyword("and");
    t.hi = p.expect_number();
  } else {
    fail(p.peek().pos, "expected '=', '>=', '<=' or 'between' after column");
  }
  return t;
}

AggSpec parse_agg(Parser& p) {
  AggSpec a;
  const Token fn_tok = p.peek();
  const std::string fn = p.expect_ident("an aggregate function");
  if (fn == "sum") {
    a.kind = AggKind::kSum;
  } else if (fn == "mean") {
    a.kind = AggKind::kMean;
  } else if (fn == "wmean") {
    a.kind = AggKind::kWeightedMean;
  } else if (fn == "max") {
    a.kind = AggKind::kMax;
  } else if (fn == "min") {
    a.kind = AggKind::kMin;
  } else if (fn == "count") {
    a.kind = AggKind::kCount;
  } else {
    fail(fn_tok.pos, "unknown aggregate '" + fn + "'");
  }
  p.expect_punct("(");
  if (a.kind != AggKind::kCount) {
    a.column = p.expect_ident("a column name");
    if (a.kind == AggKind::kWeightedMean) {
      p.expect_punct(",");
      a.weight = p.expect_ident("a weight column name");
    }
  }
  p.expect_punct(")");
  if (p.eat_ident("as")) a.as = p.expect_ident("an output column name");
  return a;
}

constexpr std::size_t kMaxRequestThreads = 64;

std::size_t parse_threads(Parser& p) {
  const std::size_t pos = p.peek().pos;
  const std::uint64_t n = p.expect_uint("thread count");
  // 0 = hardware concurrency; results are identical for any setting.
  if (n > kMaxRequestThreads) fail(pos, "thread count beyond 64");
  return static_cast<std::size_t>(n);
}

Request parse_query(Parser& p) {
  Request req;
  req.kind = Request::Kind::kQuery;
  QuerySpec& q = req.query;
  q.table = p.expect_ident("a table name");
  if (p.eat_ident("where")) {
    q.where.push_back(parse_term(p));
    while (p.eat_ident("and")) q.where.push_back(parse_term(p));
  }
  if (p.eat_ident("group")) {
    q.group_by.push_back(p.expect_ident("a group column"));
    while (p.eat_punct(",")) q.group_by.push_back(p.expect_ident("a group column"));
  }
  p.expect_keyword("agg");
  q.aggs.push_back(parse_agg(p));
  while (p.eat_punct(",")) q.aggs.push_back(parse_agg(p));
  if (p.eat_ident("threads")) q.threads = parse_threads(p);
  p.expect_end();
  return req;
}

Request parse_report(Parser& p) {
  Request req;
  req.kind = Request::Kind::kReport;
  auto& spec = req.report;
  p.expect_keyword("jobs");
  p.expect_keyword("dimension");
  spec.dimension = p.expect_ident("a dimension name");
  p.expect_keyword("stats");
  spec.statistics.push_back(p.expect_ident("a statistic name"));
  while (p.eat_punct(",")) spec.statistics.push_back(p.expect_ident("a statistic name"));
  if (p.eat_ident("filter")) {
    spec.filter_dimension = p.expect_ident("a filter dimension");
    p.expect_punct("=");
    spec.filter_value = p.expect_string("filter value");
  }
  if (p.eat_ident("sort")) spec.sort_by = p.expect_ident("a statistic name");
  if (p.eat_ident("limit")) {
    spec.limit = static_cast<std::size_t>(p.expect_uint("row limit"));
  }
  if (p.eat_ident("threads")) spec.threads = parse_threads(p);
  p.expect_end();
  return req;
}

// --- printer ---------------------------------------------------------------

/// %.17g round-trips every finite double through strtod bit-exactly; the
/// specials get strtod's own spellings so parse(print(x)) is the identity
/// (up to NaN payload, which no comparison can observe).
std::string fmt_num(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  return common::strprintf("%.17g", v);
}

std::string quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void print_term(std::string& out, const Term& t) {
  out += t.column;
  switch (t.op) {
    case TermOp::kEq:
      out += " = " + quote(t.value);
      break;
    case TermOp::kGe:
      out += " >= " + fmt_num(t.lo);
      break;
    case TermOp::kLe:
      out += " <= " + fmt_num(t.hi);
      break;
    case TermOp::kBetween:
      out += " between " + fmt_num(t.lo) + " and " + fmt_num(t.hi);
      break;
  }
}

void print_agg(std::string& out, const AggSpec& a) {
  switch (a.kind) {
    case AggKind::kSum:
      out += "sum(" + a.column + ")";
      break;
    case AggKind::kMean:
      out += "mean(" + a.column + ")";
      break;
    case AggKind::kWeightedMean:
      out += "wmean(" + a.column + "," + a.weight + ")";
      break;
    case AggKind::kMax:
      out += "max(" + a.column + ")";
      break;
    case AggKind::kMin:
      out += "min(" + a.column + ")";
      break;
    case AggKind::kCount:
      out += "count()";
      break;
  }
  if (!a.as.empty()) out += " as " + a.as;
}

}  // namespace

Request parse_request(std::string_view text) {
  Parser p(text);
  if (p.eat_ident("query")) return parse_query(p);
  if (p.eat_ident("report")) return parse_report(p);
  fail(p.peek().pos, "expected 'query' or 'report'");
}

std::string print_request(const Request& req) {
  std::string out;
  if (req.kind == Request::Kind::kQuery) {
    const QuerySpec& q = req.query;
    out = "query " + q.table;
    for (std::size_t i = 0; i < q.where.size(); ++i) {
      out += i == 0 ? " where " : " and ";
      print_term(out, q.where[i]);
    }
    for (std::size_t i = 0; i < q.group_by.size(); ++i) {
      out += i == 0 ? " group " : ",";
      out += q.group_by[i];
    }
    for (std::size_t i = 0; i < q.aggs.size(); ++i) {
      out += i == 0 ? " agg " : ",";
      print_agg(out, q.aggs[i]);
    }
    if (q.threads != 1) out += " threads " + std::to_string(q.threads);
    return out;
  }
  const auto& spec = req.report;
  out = "report jobs dimension " + spec.dimension;
  for (std::size_t i = 0; i < spec.statistics.size(); ++i) {
    out += i == 0 ? " stats " : ",";
    out += spec.statistics[i];
  }
  if (!spec.filter_dimension.empty()) {
    out += " filter " + spec.filter_dimension + " = " + quote(spec.filter_value);
  }
  if (!spec.sort_by.empty()) out += " sort " + spec.sort_by;
  if (spec.limit != 0) out += " limit " + std::to_string(spec.limit);
  if (spec.threads != 1) out += " threads " + std::to_string(spec.threads);
  return out;
}

std::string canonical_text(std::string_view text) {
  return print_request(parse_request(text));
}

warehouse::Query compile(const QuerySpec& spec, const warehouse::Table& table) {
  warehouse::Query q(table);
  if (!spec.where.empty()) {
    std::vector<warehouse::RowPredicate> preds;
    preds.reserve(spec.where.size());
    for (const Term& t : spec.where) {
      switch (t.op) {
        case TermOp::kEq:
          preds.push_back(warehouse::eq(t.column, t.value));
          break;
        case TermOp::kGe:
          preds.push_back(warehouse::ge(t.column, t.lo));
          break;
        case TermOp::kLe:
          preds.push_back(warehouse::le(t.column, t.hi));
          break;
        case TermOp::kBetween:
          preds.push_back(warehouse::between(t.column, t.lo, t.hi));
          break;
      }
    }
    if (preds.size() == 1) {
      q.where(std::move(preds.front()));
    } else {
      q.where(warehouse::all_of(std::move(preds)));
    }
  }
  q.group_by(spec.group_by).aggregate(spec.aggs).threads(spec.threads);
  return q;
}

}  // namespace supremm::service
