#include "service/cache.h"

#include <utility>

namespace supremm::service {

std::optional<CachedResult> ResultCache::lookup(const std::string& key) {
  std::lock_guard lock(mu_);
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  order_.splice(order_.begin(), order_, it->second.order_it);
  return it->second.value;
}

void ResultCache::insert(const std::string& key, CachedResult value) {
  if (capacity_ == 0) return;
  std::lock_guard lock(mu_);
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.value = std::move(value);
    order_.splice(order_.begin(), order_, it->second.order_it);
    return;
  }
  order_.push_front(key);
  map_.emplace(key, Entry{std::move(value), order_.begin()});
  while (map_.size() > capacity_) {
    map_.erase(order_.back());
    order_.pop_back();
    ++evictions_;
  }
}

ResultCache::Counters ResultCache::counters() const {
  std::lock_guard lock(mu_);
  Counters c;
  c.hits = hits_;
  c.misses = misses_;
  c.evictions = evictions_;
  c.entries = map_.size();
  return c;
}

}  // namespace supremm::service
