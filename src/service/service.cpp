#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <optional>
#include <span>
#include <utility>

#include "archive/partition.h"
#include "archive/tables.h"
#include "common/error.h"
#include "common/strings.h"
#include "warehouse/rollup.h"

namespace supremm::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

// The compiled request terms, re-expressed for the rollup subsumption
// checker. Lossless: Term and rollup::PredInput have the same shape.
warehouse::rollup::QueryInput rollup_input(const QuerySpec& spec) {
  warehouse::rollup::QueryInput in;
  in.where.reserve(spec.where.size());
  for (const Term& t : spec.where) {
    warehouse::rollup::PredInput p;
    switch (t.op) {
      case TermOp::kEq: p.op = warehouse::rollup::PredInput::Op::kEq; break;
      case TermOp::kGe: p.op = warehouse::rollup::PredInput::Op::kGe; break;
      case TermOp::kLe: p.op = warehouse::rollup::PredInput::Op::kLe; break;
      case TermOp::kBetween:
        p.op = warehouse::rollup::PredInput::Op::kBetween;
        break;
    }
    p.column = t.column;
    p.value = t.value;
    p.lo = t.lo;
    p.hi = t.hi;
    in.where.push_back(std::move(p));
  }
  in.group_by = spec.group_by;
  in.aggs = spec.aggs;
  return in;
}

}  // namespace

// ---------------------------------------------------------------------------
// Config / status

void ServiceConfig::validate() const {
  if (workers <= 0) {
    throw common::InvalidArgument(
        common::strprintf("ServiceConfig.workers must be positive (got %d)", workers));
  }
  if (queue_limit <= 0) {
    throw common::InvalidArgument(common::strprintf(
        "ServiceConfig.queue_limit must be positive (got %d)", queue_limit));
  }
  if (cache_entries < 0) {
    throw common::InvalidArgument(common::strprintf(
        "ServiceConfig.cache_entries must be non-negative (got %d)", cache_entries));
  }
  if (default_deadline_ms <= 0) {
    throw common::InvalidArgument(common::strprintf(
        "ServiceConfig.default_deadline_ms must be positive (got %lld)",
        static_cast<long long>(default_deadline_ms)));
  }
  if (stale_retry_limit < 0) {
    throw common::InvalidArgument(common::strprintf(
        "ServiceConfig.stale_retry_limit must be non-negative (got %d)", stale_retry_limit));
  }
  if (stale_retry_backoff_ms <= 0) {
    throw common::InvalidArgument(common::strprintf(
        "ServiceConfig.stale_retry_backoff_ms must be positive (got %lld)",
        static_cast<long long>(stale_retry_backoff_ms)));
  }
}

const char* to_string(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kRejected: return "rejected";
    case Status::kTimedOut: return "timed_out";
    case Status::kCancelled: return "cancelled";
    case Status::kError: return "error";
    case Status::kStale: return "stale";
    case Status::kPartial: return "partial";
  }
  return "unknown";
}

const char* to_string(RemoteShardReport::Outcome o) {
  switch (o) {
    case RemoteShardReport::Outcome::kOk: return "ok";
    case RemoteShardReport::Outcome::kPruned: return "pruned";
    case RemoteShardReport::Outcome::kTimedOut: return "timed_out";
    case RemoteShardReport::Outcome::kError: return "error";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Latency histogram / metrics export

void LatencyHistogram::add(double ms) {
  ++count_;
  sum_ms_ += ms;
  max_ms_ = std::max(max_ms_, ms);
  const double us = ms * 1000.0;
  std::size_t b = 0;
  while (b + 1 < kBuckets && us >= static_cast<double>(std::uint64_t{1} << b)) ++b;
  ++counts_[b];
}

double LatencyHistogram::quantile_ms(double q) const {
  if (count_ == 0) return 0.0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(count_)));
  rank = std::max<std::uint64_t>(rank, 1);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += counts_[b];
    if (seen >= rank) {
      // Upper edge of the bucket; for the overflow bucket the observed max
      // is the tightest bound we have.
      if (b + 1 == kBuckets) return max_ms_;
      return static_cast<double>(std::uint64_t{1} << b) / 1000.0;
    }
  }
  return max_ms_;
}

namespace {

std::string histogram_json(const LatencyHistogram& h) {
  return common::strprintf(
      "{\"count\":%llu,\"mean\":%.3f,\"p50\":%.3f,\"p90\":%.3f,\"p99\":%.3f,"
      "\"max\":%.3f}",
      static_cast<unsigned long long>(h.count()), h.mean_ms(), h.quantile_ms(0.5),
      h.quantile_ms(0.9), h.quantile_ms(0.99), h.max_ms());
}

}  // namespace

std::string to_json(const ServiceMetrics& m) {
  std::string out = "{";
  out += common::strprintf(
      "\"epoch\":%llu,\"submitted\":%llu,\"parse_errors\":%llu,"
      "\"completed\":%llu,\"rejected\":%llu,\"timed_out\":%llu,"
      "\"cancelled\":%llu,\"errors\":%llu,",
      static_cast<unsigned long long>(m.epoch),
      static_cast<unsigned long long>(m.submitted),
      static_cast<unsigned long long>(m.parse_errors),
      static_cast<unsigned long long>(m.completed),
      static_cast<unsigned long long>(m.rejected),
      static_cast<unsigned long long>(m.timed_out),
      static_cast<unsigned long long>(m.cancelled),
      static_cast<unsigned long long>(m.errors));
  out += common::strprintf(
      "\"degraded\":%s,\"stale_served\":%llu,\"republish_failures\":%llu,",
      m.degraded ? "true" : "false", static_cast<unsigned long long>(m.stale_served),
      static_cast<unsigned long long>(m.republish_failures));
  out += common::strprintf(
      "\"cache\":{\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
      "\"entries\":%zu},",
      static_cast<unsigned long long>(m.cache_hits),
      static_cast<unsigned long long>(m.cache_misses),
      static_cast<unsigned long long>(m.cache_evictions), m.cache_entries);
  out += common::strprintf(
      "\"rollup\":{\"enabled\":%s,\"hits\":%llu,\"misses\":%llu,"
      "\"rebuilds\":%llu,\"cells\":%zu},",
      m.rollups_enabled ? "true" : "false",
      static_cast<unsigned long long>(m.rollup_hits),
      static_cast<unsigned long long>(m.rollup_misses),
      static_cast<unsigned long long>(m.rollup_rebuilds), m.rollup_cells);
  out += common::strprintf(
      "\"federation\":{\"bound\":%s,\"queries\":%llu,\"partial\":%llu,"
      "\"shards\":{",
      m.federation_bound ? "true" : "false",
      static_cast<unsigned long long>(m.federated),
      static_cast<unsigned long long>(m.federated_partial));
  bool first_shard = true;
  for (const auto& [name, s] : m.shards) {
    if (!first_shard) out += ",";
    first_shard = false;
    out += common::strprintf(
        "\"%s\":{\"ok\":%llu,\"pruned\":%llu,\"rollup_served\":%llu,"
        "\"timeouts\":%llu,\"errors\":%llu,\"total_ms\":%.3f}",
        name.c_str(), static_cast<unsigned long long>(s.ok),
        static_cast<unsigned long long>(s.pruned),
        static_cast<unsigned long long>(s.rollup_served),
        static_cast<unsigned long long>(s.timeouts),
        static_cast<unsigned long long>(s.errors), s.total_ms);
  }
  out += "}},";
  out += common::strprintf("\"queue\":{\"depth\":%zu,\"peak\":%zu},",
                           m.queue_depth, m.queue_peak);
  out += "\"latency_ms\":{\"queue_wait\":" + histogram_json(m.queue_wait_ms) +
         ",\"exec\":" + histogram_json(m.exec_ms) +
         ",\"total\":" + histogram_json(m.total_ms) + "}";
  out += "}";
  return out;
}

// ---------------------------------------------------------------------------
// Internal job / snapshot

struct Service::Snapshot {
  std::uint64_t epoch = 0;
  common::TimePoint watermark = 0;
  std::map<std::string, std::shared_ptr<const warehouse::Table>> tables;
  std::shared_ptr<const xdmod::JobsRealm> realm;  // null until jobs published
  // Materialized day/week/month/quarter rollups over the published jobs
  // table (null when cfg.rollups is off or only publish_tables was used).
  std::shared_ptr<const warehouse::rollup::RollupSet> rollups;
};

struct Job {
  std::string client;
  Request request;
  std::string canonical;
  std::string cache_key;
  bool stale = false;  // submitted while degraded: respond kStale, not kOk
  std::shared_ptr<const Service::Snapshot> snap;
  common::CancelToken token;
  Clock::time_point submitted;
  std::promise<ResponsePtr> promise;
  std::shared_future<ResponsePtr> future;
};

ResponsePtr Ticket::wait() const {
  if (!job_) throw common::InvalidArgument("Ticket::wait on empty ticket");
  return job_->future.get();
}

void Ticket::cancel() {
  if (job_) job_->token.cancel();
}

Ticket Session::submit(std::string_view text, std::int64_t deadline_ms) {
  return service_->submit(client_, text, deadline_ms);
}

ResponsePtr Session::run(std::string_view text, std::int64_t deadline_ms) {
  return submit(text, deadline_ms).wait();
}

// ---------------------------------------------------------------------------
// Service

Service::Service(ServiceConfig cfg)
    : cfg_(cfg),
      cache_(static_cast<std::size_t>(std::max(cfg.cache_entries, 0))) {
  cfg_.validate();
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Service::~Service() {
  {
    std::lock_guard lock(queue_mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void Service::publish_snapshot(std::shared_ptr<Snapshot> snap) {
  std::lock_guard lock(snap_mu_);
  snap->epoch = ++epoch_;
  snap_ = std::move(snap);
}

std::shared_ptr<const Service::Snapshot> Service::snapshot() const {
  std::lock_guard lock(snap_mu_);
  return snap_;
}

std::uint64_t Service::epoch() const {
  std::lock_guard lock(snap_mu_);
  return epoch_;
}

void Service::publish_tables(std::map<std::string, warehouse::Table> tables,
                             common::TimePoint watermark) {
  auto snap = std::make_shared<Snapshot>();
  snap->watermark = watermark;
  for (auto& [name, table] : tables) {
    snap->tables.emplace(name,
                         std::make_shared<const warehouse::Table>(std::move(table)));
  }
  publish_snapshot(std::move(snap));
}

void Service::publish_jobs(std::vector<etl::JobSummary> jobs,
                           common::TimePoint watermark) {
  auto snap = std::make_shared<Snapshot>();
  snap->watermark = watermark;
  // Canonical row order is ascending job id — the order Archive::load
  // restores. Rollup serving emits groups and merges sub-tuples by min job
  // id, so an unsorted publish would diverge from the raw scan in row order
  // (and fold order, hence float bits) for the same data.
  std::sort(jobs.begin(), jobs.end(),
            [](const etl::JobSummary& a, const etl::JobSummary& b) { return a.id < b.id; });
  warehouse::Table jt = archive::jobs_table(jobs);
  // Bucket columns and the time partition are part of the query surface and
  // fix the aggregation contract; they do not depend on whether rollups are
  // built, so cfg_.rollups gates only the build (a null snap->rollups then
  // disables serving) and results stay identical either way.
  warehouse::rollup::augment_jobs_table(jt);
  if (cfg_.rollups) {
    snap->rollups = std::make_shared<const warehouse::rollup::RollupSet>(
        warehouse::rollup::build_from_table(jt));
  }
  jt.rebuild_zone_index(archive::kDefaultChunkRows);
  snap->tables.emplace(archive::kJobsTable,
                       std::make_shared<const warehouse::Table>(std::move(jt)));
  snap->realm = std::make_shared<const xdmod::JobsRealm>(
      std::span<const etl::JobSummary>(jobs));
  publish_snapshot(std::move(snap));
}

void Service::bind_archive(archive::Archive& ar) {
  if (!ar.exists()) {
    throw common::NotFoundError("bind_archive: archive '" + ar.dir() +
                                "' is empty");
  }
  const auto republish = [this, &ar] {
    const archive::LoadResult loaded = ar.load();
    // Once a good snapshot is being served, a load that had to quarantine
    // partitions is a degraded source — keep serving the retained snapshot
    // in stale mode rather than publishing a partial view over it. (With
    // nothing published yet, partial data beats no data: first bind
    // publishes whatever loads, quarantines and all.)
    if (!loaded.quarantined.empty() && snapshot() != nullptr) {
      throw common::ArchiveError(common::strprintf(
          "republish from '%s' quarantined %zu partitions; retaining previous snapshot",
          ar.dir().c_str(), loaded.quarantined.size()));
    }
    auto snap = std::make_shared<Snapshot>();
    snap->watermark = ar.watermark();
    warehouse::Table jt = archive::jobs_table(loaded.result.jobs);
    warehouse::rollup::augment_jobs_table(jt);
    if (cfg_.rollups) {
      // Prefer the archive's incrementally maintained cells; an archive that
      // predates rollups (or whose rollup partitions failed verification)
      // falls back to a from-scratch build over the loaded jobs. A load that
      // quarantined partitions publishes a *partial* jobs table, while the
      // maintained cells were folded from the full pre-corruption data —
      // serving them would disagree with the raw scan over the very table
      // being published, so rebuild from what actually loaded instead.
      std::optional<warehouse::rollup::RollupSet> maintained;
      if (loaded.quarantined.empty()) maintained = ar.load_rollups();
      if (maintained) {
        snap->rollups = std::make_shared<const warehouse::rollup::RollupSet>(
            std::move(*maintained));
      } else {
        snap->rollups = std::make_shared<const warehouse::rollup::RollupSet>(
            warehouse::rollup::build_from_table(jt));
        std::lock_guard mlock(metrics_mu_);
        ++counters_.rollup_rebuilds;
      }
    }
    jt.rebuild_zone_index(archive::kDefaultChunkRows);
    snap->tables.emplace(archive::kJobsTable,
                         std::make_shared<const warehouse::Table>(std::move(jt)));
    warehouse::Table st = archive::series_table(loaded.result.series);
    st.rebuild_zone_index(archive::kDefaultChunkRows);
    snap->tables.emplace(archive::kSeriesTable,
                         std::make_shared<const warehouse::Table>(std::move(st)));
    warehouse::Table qt = archive::quality_to_table(loaded.result.quality);
    qt.rebuild_zone_index(archive::kDefaultChunkRows);
    snap->tables.emplace(archive::kQualityTable,
                         std::make_shared<const warehouse::Table>(std::move(qt)));
    snap->realm = std::make_shared<const xdmod::JobsRealm>(
        std::span<const etl::JobSummary>(loaded.result.jobs));
    publish_snapshot(std::move(snap));
  };
  {
    std::lock_guard lock(degraded_mu_);
    republish_ = republish;
  }
  republish();  // initial bind: failures propagate to the caller
  // Appends republish through the degradation guard: a failure retains the
  // pre-append snapshot and flips the service into stale mode instead of
  // throwing into the archive writer.
  ar.on_append([this](const archive::Manifest&) { try_republish(); });
}

void Service::bind_remote(std::shared_ptr<const RemoteExecutor> remote) {
  bool need_snapshot = false;
  {
    std::lock_guard lock(snap_mu_);
    remote_ = std::move(remote);
    need_snapshot = remote_ != nullptr && snap_ == nullptr;
  }
  // A purely-federated deployment has nothing local to publish; give it an
  // empty snapshot so submits are admitted instead of "no data published".
  if (need_snapshot) publish_snapshot(std::make_shared<Snapshot>());
}

bool Service::try_republish() {
  std::function<void()> rep;
  {
    std::lock_guard lock(degraded_mu_);
    rep = republish_;
  }
  if (!rep) return !degraded();
  try {
    rep();
  } catch (const common::Error& e) {
    {
      std::lock_guard lock(metrics_mu_);
      ++counters_.republish_failures;
    }
    std::lock_guard lock(degraded_mu_);
    degraded_ = true;
    degraded_reason_ = e.what();
    const int shift = std::min(retries_used_, 10);
    next_retry_ = Clock::now() + std::chrono::milliseconds(cfg_.stale_retry_backoff_ms *
                                                           (std::int64_t{1} << shift));
    return false;
  }
  std::lock_guard lock(degraded_mu_);
  degraded_ = false;
  degraded_reason_.clear();
  retries_used_ = 0;
  return true;
}

void Service::maybe_retry_republish() {
  {
    std::lock_guard lock(degraded_mu_);
    if (!degraded_ || !republish_) return;
    if (retries_used_ >= cfg_.stale_retry_limit) return;  // budget spent
    if (Clock::now() < next_retry_) return;               // inside backoff
    ++retries_used_;
  }
  (void)try_republish();
}

bool Service::degraded() const {
  std::lock_guard lock(degraded_mu_);
  return degraded_;
}

bool Service::refresh() { return try_republish(); }

Ticket Service::submit(const std::string& client, std::string_view text,
                       std::int64_t deadline_ms) {
  if (deadline_ms < 0) {
    throw common::InvalidArgument(common::strprintf(
        "submit deadline_ms must be non-negative (got %lld)",
        static_cast<long long>(deadline_ms)));
  }
  {
    std::lock_guard lock(metrics_mu_);
    ++counters_.submitted;
  }
  auto job = std::make_shared<Job>();
  job->client = client;
  job->submitted = Clock::now();
  job->future = job->promise.get_future().share();

  try {
    job->request = parse_request(text);
  } catch (const common::Error& e) {
    {
      std::lock_guard lock(metrics_mu_);
      ++counters_.parse_errors;
    }
    Response r;
    r.client = client;
    r.status = Status::kError;
    r.error = e.what();
    finish(*job, std::move(r));
    return Ticket(job);
  }
  job->canonical = print_request(job->request);
  // Degraded mode: spend one bounded, backoff-spaced retry on getting
  // healthy again, then serve whatever snapshot we hold — explicitly
  // flagged stale if the retry did not recover.
  if (degraded()) maybe_retry_republish();
  job->stale = degraded();
  job->snap = snapshot();

  Response base;
  base.client = client;
  base.canonical = job->canonical;
  if (!job->snap) {
    base.status = Status::kError;
    base.error = "no data published";
    finish(*job, std::move(base));
    return Ticket(job);
  }
  base.epoch = job->snap->epoch;
  base.watermark = job->snap->watermark;
  // The '#' separator is unambiguous: outside quoted strings the grammar has
  // no '#', and a '#' inside a quoted string is always followed by the
  // closing quote, so the trailing "#<digits>" run is uniquely the epoch.
  job->cache_key = job->canonical + "#" + std::to_string(job->snap->epoch);

  if (auto hit = cache_.lookup(job->cache_key)) {
    base.status = job->stale ? Status::kStale : Status::kOk;
    base.cache_hit = true;
    base.table = std::move(hit->table);
    base.stats = hit->stats;
    finish(*job, std::move(base));
    return Ticket(job);
  }

  const std::int64_t effective =
      deadline_ms == 0 ? cfg_.default_deadline_ms : deadline_ms;
  job->token.set_deadline(job->submitted + std::chrono::milliseconds(effective));

  {
    std::unique_lock lock(queue_mu_);
    if (stopping_) {
      lock.unlock();
      base.status = Status::kError;
      base.error = "service is shutting down";
      finish(*job, std::move(base));
      return Ticket(job);
    }
    if (queue_.size() >= static_cast<std::size_t>(cfg_.queue_limit)) {
      lock.unlock();
      base.status = Status::kRejected;
      base.error = common::strprintf("admission queue full (%d pending)",
                                     cfg_.queue_limit);
      finish(*job, std::move(base));
      return Ticket(job);
    }
    queue_.push_back(job);
    queue_peak_ = std::max(queue_peak_, queue_.size());
  }
  queue_cv_.notify_one();
  return Ticket(job);
}

void Service::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) break;  // stopping_ and fully drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    execute(*job);
  }
}

void Service::execute(Job& job) {
  const auto dequeued = Clock::now();
  Response r;
  r.client = job.client;
  r.canonical = job.canonical;
  r.epoch = job.snap->epoch;
  r.watermark = job.snap->watermark;
  r.queue_ms = ms_between(job.submitted, dequeued);

  if (job.token.cancelled()) {
    r.status = Status::kCancelled;
    r.error = "cancelled while queued";
  } else if (job.token.deadline_expired()) {
    r.status = Status::kTimedOut;
    r.error = "deadline expired before execution";
  } else {
    try {
      bool remote_served = false;
      if (job.request.kind == Request::Kind::kQuery) {
        const QuerySpec& spec = job.request.query;
        std::shared_ptr<const RemoteExecutor> remote;
        {
          std::lock_guard lock(snap_mu_);
          remote = remote_;
        }
        if (remote != nullptr && spec.table == remote->table_name()) {
          // Federated table: scatter-gather through the bound executor
          // instead of the local snapshot. A complete merge behaves exactly
          // like a local run (cached below); a degraded one responds
          // kPartial, names the missing shards and is never cached.
          RemoteResult fed = remote->run(spec);
          {
            std::lock_guard mlock(metrics_mu_);
            ++counters_.federated;
            for (const RemoteShardReport& s : fed.shards) {
              ServiceMetrics::ShardCounters& c = counters_.shards[s.shard];
              switch (s.outcome) {
                case RemoteShardReport::Outcome::kOk: ++c.ok; break;
                case RemoteShardReport::Outcome::kPruned: ++c.pruned; break;
                case RemoteShardReport::Outcome::kTimedOut: ++c.timeouts; break;
                case RemoteShardReport::Outcome::kError: ++c.errors; break;
              }
              if (s.rollup_served) ++c.rollup_served;
              c.total_ms += s.ms;
            }
          }
          r.stats = fed.stats;
          r.table = std::move(fed.table);
          if (!fed.complete) {
            std::string failed;
            for (const RemoteShardReport& s : fed.shards) {
              if (s.outcome != RemoteShardReport::Outcome::kTimedOut &&
                  s.outcome != RemoteShardReport::Outcome::kError) {
                continue;
              }
              if (!failed.empty()) failed += "; ";
              failed += s.shard;
              failed += " (";
              failed += to_string(s.outcome);
              if (!s.error.empty()) {
                failed += ": ";
                failed += s.error;
              }
              failed += ")";
            }
            r.status = Status::kPartial;
            r.error = "federated answer is missing shards: " + failed;
          }
          remote_served = true;
        }
        if (!remote_served) {
          const auto it = job.snap->tables.find(spec.table);
          if (it == job.snap->tables.end()) {
            throw common::NotFoundError("service table '" + spec.table + "'");
          }
          // Subsumable jobs queries are answered from the materialized rollup
          // cells (bit-identical to the raw scan by the DESIGN.md §16
          // contract); everything else falls through to the scan unchanged.
          bool served = false;
          if (spec.table == archive::kJobsTable && job.snap->rollups &&
              warehouse::rollup::enabled()) {
            if (const auto plan = warehouse::rollup::subsume(rollup_input(spec))) {
              warehouse::Table out =
                  warehouse::rollup::serve(*job.snap->rollups, *plan, &r.stats);
              r.table = std::make_shared<const warehouse::Table>(std::move(out));
              served = true;
            }
            std::lock_guard mlock(metrics_mu_);
            served ? ++counters_.rollup_hits : ++counters_.rollup_misses;
          }
          if (!served) {
            warehouse::Query q = compile(spec, *it->second);
            q.cancel_token(&job.token);
            warehouse::Table out = q.run();
            r.stats = q.stats();
            r.table = std::make_shared<const warehouse::Table>(std::move(out));
          }
        }
      } else {
        if (!job.snap->realm) {
          throw common::NotFoundError(
              "report requested but no job summaries were published");
        }
        // The realm has no cooperative safe points; deadline and cancel are
        // enforced at the dequeue check above for report requests.
        r.table = std::make_shared<const warehouse::Table>(
            job.snap->realm->report(job.request.report));
      }
      // A degraded-mode run still caches: the result is correct for its
      // (stale) epoch, and later stale hits serve from it. An incomplete
      // federated answer (kPartial) never caches — a retry may find the
      // missing shards healthy again under the same epoch.
      if (r.status != Status::kPartial) {
        r.status = job.stale ? Status::kStale : Status::kOk;
        cache_.insert(job.cache_key, CachedResult{r.table, r.stats});
      }
    } catch (const common::Cancelled& e) {
      // No partial results escape: the executor threw before assigning its
      // output or stats, and we clear anything set on this response.
      r.table.reset();
      r.stats = warehouse::QueryStats{};
      if (job.token.cancelled()) {
        r.status = Status::kCancelled;
        r.error = e.what();
      } else {
        r.status = Status::kTimedOut;
        r.error = e.what();
      }
    } catch (const std::exception& e) {
      r.table.reset();
      r.stats = warehouse::QueryStats{};
      r.status = Status::kError;
      r.error = e.what();
    }
  }
  r.exec_ms = ms_between(dequeued, Clock::now());
  {
    std::lock_guard lock(metrics_mu_);
    counters_.queue_wait_ms.add(r.queue_ms);
    counters_.exec_ms.add(r.exec_ms);
  }
  finish(job, std::move(r));
}

void Service::finish(Job& job, Response r) {
  r.total_ms = ms_between(job.submitted, Clock::now());
  // Counters first, promise second: a client that returns from wait() must
  // already see its response reflected in metrics().
  {
    std::lock_guard lock(metrics_mu_);
    switch (r.status) {
      case Status::kOk: ++counters_.completed; break;
      case Status::kRejected: ++counters_.rejected; break;
      case Status::kTimedOut: ++counters_.timed_out; break;
      case Status::kCancelled: ++counters_.cancelled; break;
      case Status::kError: ++counters_.errors; break;
      case Status::kStale: ++counters_.stale_served; break;
      case Status::kPartial: ++counters_.federated_partial; break;
    }
    counters_.total_ms.add(r.total_ms);
  }
  job.promise.set_value(std::make_shared<const Response>(std::move(r)));
}

ServiceMetrics Service::metrics() const {
  ServiceMetrics m;
  {
    std::lock_guard lock(metrics_mu_);
    m = counters_;
  }
  {
    std::lock_guard lock(queue_mu_);
    m.queue_depth = queue_.size();
    m.queue_peak = queue_peak_;
  }
  const ResultCache::Counters c = cache_.counters();
  m.cache_hits = c.hits;
  m.cache_misses = c.misses;
  m.cache_evictions = c.evictions;
  m.cache_entries = c.entries;
  {
    std::lock_guard lock(snap_mu_);
    m.epoch = epoch_;
    m.federation_bound = remote_ != nullptr;
    if (snap_ && snap_->rollups) {
      m.rollups_enabled = warehouse::rollup::enabled();
      m.rollup_cells = snap_->rollups->cells();
    }
  }
  {
    std::lock_guard lock(degraded_mu_);
    m.degraded = degraded_;
  }
  return m;
}

std::string Service::metrics_json() const { return to_json(metrics()); }

}  // namespace supremm::service
