// Support-staff triage: the paper's §4.3.3 workflow. Find jobs and users
// with anomalous or inefficient resource use, then pull the rationalized
// syslog records for the suspect jobs - the "proactive role" the paper
// describes, where staff contact users with poorly performing applications
// before they file tickets.
#include <cstdio>
#include <iostream>

#include "supremm/supremm.h"

int main() {
  using namespace supremm;

  pipeline::PipelineConfig cfg;
  cfg.spec = facility::scaled(facility::ranger(), 0.015);
  cfg.span = 21 * common::kDay;
  cfg.seed = 99;
  const auto run = pipeline::run_pipeline(cfg);
  std::printf("ingested %zu jobs on %s\n\n", run.result.jobs.size(), run.spec.name.c_str());

  // 1. Heavy users below the efficiency line (Figure 4's circled users).
  const double facility_eff = xdmod::facility_efficiency(run.result.jobs);
  std::printf("facility efficiency: %.0f%%\n", facility_eff * 100);
  const auto suspects = xdmod::inefficient_heavy_users(run.result.jobs, 50.0, facility_eff);
  std::printf("heavy users below the facility line: %zu\n\n", suspects.size());
  const xdmod::ProfileAnalyzer analyzer(run.result.jobs);
  for (std::size_t i = 0; i < suspects.size() && i < 3; ++i) {
    const auto& u = suspects[i];
    std::printf(">> %s: %.0f node-hours, %.0f%% idle - contact candidate\n",
                u.user.c_str(), u.node_hours, u.idle_fraction() * 100);
    xdmod::render_profile(analyzer.profile(xdmod::GroupBy::kUser, u.user))
        .render(std::cout);
    std::cout << '\n';
  }

  // 2. Jobs with anomalous metric values vs their application's norm.
  const auto anomalies = xdmod::anomalous_jobs(run.result.jobs, 4.0);
  xdmod::render_anomalies(anomalies, 12).render(std::cout);
  std::cout << '\n';

  // 3. Correlate with the rationalized logs: which anomalous jobs also left
  // error-class messages (OOM kills, soft lockups, Lustre errors)?
  const auto raw_log = loglib::generate_syslog(run.spec, run.catalogue,
                                               run.engine->executions(), cfg.seed);
  const loglib::JobResolver resolver(run.spec, run.engine->executions());
  std::printf("scanning %zu raw syslog lines...\n", raw_log.size());
  common::AsciiTable t("Error-class log records on anomalous jobs");
  t.header({"time", "job", "code", "host"});
  std::size_t shown = 0;
  for (const auto& line : raw_log) {
    const auto rec = loglib::rationalize(line, resolver);
    if (rec.severity < loglib::Severity::kError || rec.job_id == 0) continue;
    for (const auto& a : anomalies) {
      if (a.job_id == rec.job_id) {
        t.add_row()
            .cell(common::format_time(rec.time))
            .cell(static_cast<std::int64_t>(rec.job_id))
            .cell(rec.code)
            .cell(rec.host);
        ++shown;
        break;
      }
    }
    if (shown >= 20) break;
  }
  t.render(std::cout);

  // 4. Failure profiles per application (which codes terminate abnormally).
  std::cout << '\n';
  xdmod::render_failures(xdmod::failure_profiles(run.result.jobs)).render(std::cout);

  // 5. Drill into the single worst anomaly: the job-level trace shows *when*
  // within the job the anomalous behavior occurred (the user report
  // "resource use profile by job").
  if (!anomalies.empty()) {
    const auto job_id = anomalies.front().job_id;
    const auto trace = etl::extract_job_trace(run.files, job_id);
    std::printf("\ntrace of job %lld (%zu intervals):\n",
                static_cast<long long>(job_id), trace.size());
    common::AsciiTable tt("Per-interval resource rates");
    tt.header({"t", "idle", "GF/s/node", "mem GB", "scratch MB/s", "ib MB/s"});
    for (std::size_t i = 0; i < trace.size(); i += std::max<std::size_t>(1, trace.size() / 12)) {
      const auto& p = trace[i];
      tt.add_row()
          .cell(common::format_time(p.t))
          .cell(p.cpu_idle, "%.2f")
          .cell(p.flops_gf_node, "%.2f")
          .cell(p.mem_gb_node, "%.1f")
          .cell(p.scratch_write_mb_s, "%.2f")
          .cell(p.ib_tx_mb_s, "%.1f");
    }
    tt.render(std::cout);
  }

  // 6. A custom report through the XDMoD realm facade: failure rate and
  // wasted node-hours per application, worst first.
  std::cout << '\n';
  const xdmod::JobsRealm realm(run.result.jobs);
  xdmod::JobsRealm::ReportSpec spec;
  spec.dimension = "application";
  spec.statistics = {"job_count", "failure_rate", "wasted_node_hours", "avg_cpu_idle"};
  spec.sort_by = "wasted_node_hours";
  realm.render(spec).render(std::cout);
  return 0;
}
