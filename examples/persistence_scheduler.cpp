// Persistence-guided co-scheduling: the paper's §4.3.4 future-work idea made
// concrete. "If the usage profile of various applications or users is
// established, the present usage could be assessed and jobs could be
// selected from the queue to complement the present resource usage e.g. add
// high I/O jobs when I/O is relatively free."
//
// This example (1) fits the persistence model to show how far ahead current
// usage predicts the future, (2) reads the facility's current normalized
// usage, and (3) ranks a synthetic queue by complementarity.
#include <cstdio>
#include <iostream>

#include "supremm/supremm.h"

int main() {
  using namespace supremm;

  pipeline::PipelineConfig cfg;
  cfg.spec = facility::scaled(facility::ranger(), 0.015);
  cfg.span = 21 * common::kDay;
  cfg.seed = 4;
  const auto run = pipeline::run_pipeline(cfg);
  std::printf("ingested %zu jobs on %s\n\n", run.result.jobs.size(), run.spec.name.c_str());

  // 1. How long does current usage persist? (Table 1 / Figure 6 machinery.)
  const auto rep = xdmod::persistence_analysis(run.result.series);
  xdmod::render_persistence(rep).render(std::cout);
  std::printf("\npersistence model: ratio = %.2f + %.2f*log10(offset_min), R^2 = %.2f\n",
              rep.combined.fit.intercept, rep.combined.fit.slope, rep.combined.fit.r2);
  std::printf("prediction horizon (ratio -> 1): ~%.0f minutes; within it, scheduling "
              "against current usage is better than scheduling blind.\n\n",
              rep.combined.horizon_minutes());

  // 2. Current facility usage, normalized to the busiest observed level.
  const std::size_t now_bucket = run.result.series.buckets - 1;
  const auto current = xdmod::current_usage_norm(run.result.series, now_bucket,
                                                 etl::key_metric_names());
  common::AsciiTable tc("Current facility usage (1.0 = busiest observed)");
  tc.header({"metric", "level", ""});
  for (const auto& [m, v] : current) {
    tc.add_row().cell(m).cell(v, "%.2f").cell(common::ascii_bar(v, 1.0, 24));
  }
  tc.render(std::cout);
  std::cout << '\n';

  // 3. A queue of candidates with profiles predicted from history.
  const xdmod::ProfileAnalyzer analyzer(run.result.jobs);
  std::vector<xdmod::QueueCandidate> queue;
  facility::JobId next_id = 1000000;
  for (const char* app : {"NAMD", "AMBER", "WRF", "COSMOS", "DATAMINER", "QCHEM",
                          "OPENFOAM", "UNDERSUB"}) {
    queue.push_back(xdmod::predict_candidate(analyzer, next_id++, "queued-user", app));
    queue.back().app = app;
  }
  const auto ranked = xdmod::rank_candidates(current, queue);
  common::AsciiTable tr("Queue ranked by complementarity with current usage");
  tr.header({"rank", "app", "score", "predicted idle", "predicted io_w"});
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    const auto& c = ranked[i].candidate;
    tr.add_row()
        .cell(static_cast<std::int64_t>(i + 1))
        .cell(c.app)
        .cell(ranked[i].score, "%.2f")
        .cell(c.predicted_norm.count("cpu_idle") ? c.predicted_norm.at("cpu_idle") : 0.0,
              "%.2f")
        .cell(c.predicted_norm.count("io_scratch_write")
                  ? c.predicted_norm.at("io_scratch_write")
                  : 0.0,
              "%.2f");
  }
  tr.render(std::cout);
  std::printf("\nwithin the ~%.0f-minute persistence horizon, the top-ranked job best "
              "fills the facility's currently under-used dimensions.\n",
              rep.combined.horizon_minutes());
  return 0;
}
