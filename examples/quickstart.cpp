// Quickstart: simulate a small Ranger-like cluster for two weeks, run the
// TACC_Stats collection, ingest everything, and print a user usage profile
// report - the full paper workflow in one file.
#include <cstdio>
#include <iostream>

#include "supremm/supremm.h"

int main() {
  using namespace supremm;
  constexpr std::uint64_t kSeed = 42;
  const common::TimePoint start = 0;
  const common::Duration span = 14 * common::kDay;

  // 1. Describe the facility: Ranger scaled to 2% (about 79 nodes).
  const facility::ClusterSpec spec = facility::scaled(facility::ranger(), 0.02);
  const auto catalogue = facility::standard_catalogue();
  const auto population = facility::UserPopulation::generate(spec, catalogue, kSeed);
  std::printf("cluster %s: %zu nodes x %zu cores, %.0f GB/node, %.1f TF peak\n",
              spec.name.c_str(), spec.node_count, spec.node.cores(), spec.node.mem_gb,
              spec.peak_tflops());

  // 2. Generate and schedule a workload.
  facility::WorkloadConfig wl;
  wl.start = start;
  wl.span = span;
  wl.seed = kSeed;
  auto requests = facility::generate_workload(spec, catalogue, population, wl);
  const auto maintenance = facility::standard_maintenance(start, span, kSeed);
  auto execs = facility::Scheduler::run(spec, std::move(requests), maintenance);
  std::printf("scheduled %zu jobs (%zu maintenance windows)\n", execs.size(),
              maintenance.size());

  // 3. Run the facility and collect TACC_Stats raw data on every node.
  facility::FacilityEngine engine(spec, std::move(execs), maintenance, start, start + span,
                                  kSeed);
  const auto outputs = taccstats::run_all_agents(engine, taccstats::AgentConfig{});
  std::uint64_t bytes = 0;
  std::vector<taccstats::RawFile> files;
  for (const auto& o : outputs) {
    bytes += o.bytes;
    files.insert(files.end(), o.files.begin(), o.files.end());
  }
  std::printf("collected %zu raw files, %.1f MB total (%.2f MB/node/day)\n", files.size(),
              static_cast<double>(bytes) / 1e6,
              static_cast<double>(bytes) / 1e6 / static_cast<double>(spec.node_count) /
                  common::to_hours(span) * 24.0);

  // 4. Side-channel logs: accounting + Lariat.
  const auto acct = accounting::from_executions(spec, population, engine.executions());
  const auto lrt =
      lariat::from_executions(spec, catalogue, population, engine.executions());

  // 5. Ingest into job summaries + facility series.
  etl::IngestConfig cfg;
  cfg.start = start;
  cfg.span = span;
  cfg.cluster = spec.name;
  const etl::IngestPipeline pipeline(cfg);
  const auto result =
      pipeline.run(files, acct, lrt, catalogue, etl::project_science_map(population));
  std::printf("ingested %zu jobs (%llu samples, %llu excluded short jobs)\n",
              result.jobs.size(), static_cast<unsigned long long>(result.stats.samples),
              static_cast<unsigned long long>(result.stats.jobs_excluded));

  // 6. Analyze: facility efficiency and the top-3 user profiles.
  std::printf("facility efficiency: %.0f%% (fraction of node-hours not idle)\n\n",
              xdmod::facility_efficiency(result.jobs) * 100.0);
  const xdmod::ProfileAnalyzer analyzer(result.jobs);
  for (const auto& p : analyzer.top_profiles(xdmod::GroupBy::kUser, 3)) {
    xdmod::render_profile(p).render(std::cout);
    std::cout << '\n';
  }
  return 0;
}
