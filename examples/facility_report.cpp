// Facility report: the full XDMoD-style report book for every stakeholder
// class the paper enumerates (§4.3) - users, application developers, support
// staff, systems administrators, resource managers, funding agencies -
// generated from one simulated month of a scaled-down Ranger.
#include <cstdio>
#include <iostream>

#include "supremm/supremm.h"

int main() {
  using namespace supremm;

  pipeline::PipelineConfig cfg;
  cfg.spec = facility::scaled(facility::ranger(), 0.02);
  cfg.span = 30 * common::kDay;
  cfg.seed = 7;
  cfg.with_maintenance = true;
  std::printf("simulating %s (%zu nodes) for 30 days...\n", cfg.spec.name.c_str(),
              cfg.spec.node_count);
  const auto run = pipeline::run_pipeline(cfg);
  std::printf("ingested %zu jobs; building the report book\n\n", run.result.jobs.size());

  xdmod::DataContext ctx;
  ctx.cluster = run.spec.name;
  ctx.jobs = run.result.jobs;
  ctx.series = &run.result.series;
  ctx.cores_per_node = run.spec.node.cores();
  ctx.node_mem_gb = run.spec.node.mem_gb;
  ctx.peak_tflops = run.spec.peak_tflops();

  std::size_t total = 0;
  for (std::size_t s = 0; s < xdmod::kStakeholderCount; ++s) {
    const auto stakeholder = static_cast<xdmod::Stakeholder>(s);
    std::printf("reports available to %s:\n",
                std::string(xdmod::stakeholder_name(stakeholder)).c_str());
    for (const auto& name : xdmod::report_names(stakeholder)) {
      std::printf("  - %s\n", name.c_str());
    }
    std::printf("\n");
    total += xdmod::write_reports(ctx, stakeholder, std::cout);
  }
  std::printf("rendered %zu reports across %zu stakeholder classes\n", total,
              xdmod::kStakeholderCount);
  return 0;
}
