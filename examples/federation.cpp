// Federation: simulate a three-cluster facility, stand each cluster up as a
// shard daemon speaking the versioned binary shard protocol (§17), and run
// one coordinator service that scatters compiled queries, prunes shards by
// the catalog, merges partial aggregates bit-identically, and degrades to an
// accounted partial answer when a shard goes down.
#include <cstdio>
#include <memory>
#include <vector>

#include "supremm/supremm.h"

int main() {
  using namespace supremm;

  // 1. Simulate three heterogeneous clusters (Ranger/Lonestar4 presets,
  //    scaled down) and ingest each one separately — one warehouse per
  //    cluster, exactly as separate facilities would run.
  const auto fleet = facility::heterogeneous_fleet(3, 0.01);
  std::vector<std::unique_ptr<federation::ShardExecutor>> shards;
  std::vector<std::unique_ptr<federation::ShardServer>> daemons;
  auto fed = std::make_shared<federation::Federation>();
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    pipeline::PipelineConfig cfg;
    cfg.spec = fleet[i];
    cfg.span = 3 * common::kDay;
    cfg.seed = 42 + i;
    auto run = pipeline::run_pipeline(cfg);
    auto shard = std::make_unique<federation::ShardExecutor>(
        fleet[i].name, archive::jobs_table(run.result.jobs));
    auto daemon = std::make_unique<federation::ShardServer>(*shard);  // port 0 = ephemeral
    const federation::ShardInfo info = shard->info();
    fed->add_shard(info, std::make_shared<federation::SocketTransport>(
                             "127.0.0.1", daemon->port()));
    std::printf("shard %-12s %5zu jobs  days [%lld, %lld]  tcp port %u\n",
                info.name.c_str(), run.result.jobs.size(),
                static_cast<long long>(info.day_lo),
                static_cast<long long>(info.day_hi), daemon->port());
    shards.push_back(std::move(shard));
    daemons.push_back(std::move(daemon));
  }

  // 2. Bind the federation to a coordinator service: requests in the normal
  //    request language now scatter to the shard daemons and the merged
  //    answer is bit-identical to a single warehouse holding all three.
  service::ServiceConfig cfg;
  cfg.workers = 2;
  service::Service svc(cfg);
  svc.bind_remote(fed);
  auto session = svc.session("federation-example");

  auto all = session.run("query jobs group cluster agg count(), sum(node_hours)");
  std::printf("\nfacility-wide -> %s, %zu cluster groups\n",
              service::to_string(all->status), all->table->rows());

  // A cluster-filtered query: the catalog prunes the other two shards.
  auto one = session.run(
      "query jobs where cluster = \"" + fleet[0].name +
      "\" group user agg sum(node_hours), wmean(cpu_idle, node_hours)");
  std::printf("one cluster   -> %s, %zu user groups (other shards pruned)\n",
              service::to_string(one->status), one->table->rows());

  // 3. Kill one daemon: the coordinator degrades to an accounted partial
  //    answer (Status::kPartial names the missing shard; never cached).
  daemons[2]->stop();
  auto degraded = session.run("query jobs group cluster agg count()");
  std::printf("degraded      -> %s (%s)\n", service::to_string(degraded->status),
              degraded->error.c_str());

  // 4. Per-shard scatter metrics export with the rest of the service JSON.
  std::printf("\n%s\n", svc.metrics_json().c_str());
  return 0;
}
