// Serving: stand up the embedded query service over a simulated facility
// run and consume it the way the paper's portal consumers do (§4.3) — submit
// textual requests from a client session, watch a repeat request come back
// from the result cache bit-for-bit, and read the service metrics.
#include <cstdio>

#include "supremm/supremm.h"

int main() {
  using namespace supremm;

  // 1. Simulate + ingest a small Ranger slice and start a service over it.
  pipeline::PipelineConfig cfg;
  cfg.spec = facility::scaled(facility::ranger(), 0.01);
  cfg.span = 3 * common::kDay;
  cfg.seed = 42;
  cfg.service.workers = 2;
  auto serving = pipeline::serve(cfg);
  std::printf("serving %zu jobs at epoch %llu\n", serving.run.result.jobs.size(),
              static_cast<unsigned long long>(serving.service->epoch()));

  // 2. A client session submits requests in the textual request language.
  auto session = serving.service->session("example-client");
  const char* query =
      "query jobs where cpu_idle >= 0.5 group app agg count(), sum(node_hours)";
  auto first = session.run(query);
  auto again = session.run(query);
  std::printf("query -> %s, %zu idle-heavy app groups (cache_hit=%d then %d)\n",
              service::to_string(first->status), first->table->rows(),
              first->cache_hit ? 1 : 0, again->cache_hit ? 1 : 0);

  // 3. Reports run through the same front door.
  auto report = session.run(
      "report jobs dimension user stats job_count,total_node_hours "
      "sort total_node_hours limit 5");
  std::printf("report -> %s, %zu rows (canonical: %s)\n",
              service::to_string(report->status), report->table->rows(),
              report->canonical.c_str());

  // 4. Service metrics export as JSON for dashboards.
  std::printf("%s\n", serving.service->metrics_json().c_str());
  return 0;
}
