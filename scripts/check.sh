#!/usr/bin/env bash
# Tier-1 verification plus the parallel determinism suite.
#
# Runs the repo's standard build + full ctest (the tier-1 gate from
# ROADMAP.md), then re-runs the `parallel`-labeled determinism tests twice:
# once with a single ctest job and once with all cores, so scheduling jitter
# gets a chance to surface any thread-count- or interleaving-dependent
# behavior the property tests are meant to rule out. The `simd`-labeled
# cross-ISA determinism suite then pins each dispatch tier (DESIGN.md §15),
# and the kernel microbench must report bit_identical=1 for every kernel ×
# tier in BENCH_kernels.json. Then runs the `service`-labeled serving-tier
# suite (concurrent clients, cache identity, cancellation), the
# `crash`-labeled kill-point sweeps (DESIGN.md §14) —
# failing if any archive commit left `.staging/` dirs or `COMMIT` journals
# behind — and finally the testkit smoke suites (`oracle` = differential
# query engine, `fuzz` = archive bitstream mutations; DESIGN.md §12),
# failing if they left any testkit_seed_* replay files behind — a leftover
# seed file means a divergence or contract violation was dumped for replay.
#
# Usage: scripts/check.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc)"

echo "== configure + build (${BUILD_DIR}, ${JOBS} jobs) =="
cmake -B "${BUILD_DIR}" -S .
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== tier-1: full test suite =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== parallel determinism suite, serial ctest (-j 1) =="
ctest --test-dir "${BUILD_DIR}" -L parallel --output-on-failure -j 1

echo "== parallel determinism suite, concurrent ctest (-j ${JOBS}) =="
ctest --test-dir "${BUILD_DIR}" -L parallel --output-on-failure -j "${JOBS}"

echo "== simd suite: cross-ISA-tier determinism =="
ctest --test-dir "${BUILD_DIR}" -L simd --output-on-failure -j "${JOBS}"

echo "== kernel microbench: per-tier bit identity =="
(cd "${BUILD_DIR}" && ./bench/bench_kernels > /dev/null)
if grep -q '"bit_identical": 0' "${BUILD_DIR}/BENCH_kernels.json"; then
  echo "check.sh: BENCH_kernels.json reports a kernel whose output diverges"
  echo "  from the scalar tier (bit_identical: 0):"
  grep '"bit_identical": 0' "${BUILD_DIR}/BENCH_kernels.json"
  exit 1
fi

echo "== service suite: concurrent query service =="
ctest --test-dir "${BUILD_DIR}" -L service --output-on-failure -j "${JOBS}"

echo "== rollup suite: subsumption-checked report serving (DESIGN.md §16) =="
ctest --test-dir "${BUILD_DIR}" -L rollup --output-on-failure -j "${JOBS}"

echo "== rollup forced-off leg: raw-scan fallback keeps the serving suites green =="
SUPREMM_ROLLUP=off ctest --test-dir "${BUILD_DIR}" -L service --output-on-failure -j "${JOBS}"
SUPREMM_ROLLUP=off ctest --test-dir "${BUILD_DIR}" -L rollup --output-on-failure -j "${JOBS}"

echo "== rollup bench: dashboard-mix bit-identity + p50 speedup gate =="
(cd "${BUILD_DIR}" && ./bench/bench_rollup > /dev/null)

echo "== federation suite: sharded scatter-gather determinism (DESIGN.md §17) =="
ctest --test-dir "${BUILD_DIR}" -L federation --output-on-failure -j "${JOBS}"

echo "== federation shard-count legs: each count proved in isolation =="
for nshards in 1 2 5; do
  SUPREMM_FED_SHARDS="${nshards}" ctest --test-dir "${BUILD_DIR}" \
    -L federation -R FederationFuzz --output-on-failure -j "${JOBS}"
done

echo "== federation forced-off rollup leg: raw shard partials only =="
SUPREMM_ROLLUP=off ctest --test-dir "${BUILD_DIR}" -L federation --output-on-failure -j "${JOBS}"

echo "== federation bench: merged scatter-gather bit-identity gate =="
(cd "${BUILD_DIR}" && ./bench/bench_federation > /dev/null)

echo "== bench-gate JSONs are checked in at the repo root =="
for bench_json in BENCH_kernels.json BENCH_rollup.json BENCH_federation.json; do
  if [ ! -f "${bench_json}" ]; then
    echo "check.sh: ${bench_json} missing from the repo root — copy the gated"
    echo "  bench output in (cp ${BUILD_DIR}/${bench_json} .) and commit it"
    exit 1
  fi
done

echo "== crash suite: kill-point sweeps + recovery properties =="
ctest --test-dir "${BUILD_DIR}" -L crash --output-on-failure -j "${JOBS}"

LEFTOVER_COMMITS="$(find "${BUILD_DIR}" . -maxdepth 3 \( -name 'COMMIT' -o -name '.staging' \) -print 2>/dev/null | sort -u)"
if [ -n "${LEFTOVER_COMMITS}" ]; then
  echo "check.sh: leftover archive commit staging/journal files (an interrupted"
  echo "  commit was not recovered or a clean commit failed to GC):"
  echo "${LEFTOVER_COMMITS}"
  exit 1
fi

echo "== testkit smoke: oracle differential + archive fuzz =="
ctest --test-dir "${BUILD_DIR}" -L oracle --output-on-failure -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" -L fuzz --output-on-failure -j "${JOBS}"

LEFTOVER_SEEDS="$(find "${BUILD_DIR}" . -maxdepth 2 -name 'testkit_seed_*' -print 2>/dev/null | sort -u)"
if [ -n "${LEFTOVER_SEEDS}" ]; then
  echo "check.sh: leftover testkit replay seed files (replay with"
  echo "  SUPREMM_TESTKIT_REPLAY=<file> ${BUILD_DIR}/tests/test_oracle|test_fuzz_archive):"
  echo "${LEFTOVER_SEEDS}"
  exit 1
fi

echo "check.sh: all suites passed"
