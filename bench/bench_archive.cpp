// §1.2 claim: the raw data volume (~60 GB/day across TACC systems,
// compressed 60 GB -> 20 GB before loading) forces a durable warehouse; you
// cannot re-read the raw stream for every question. This bench measures the
// src/archive answer to that: (1) the LZSS codec's compression ratio over
// raw collector output (the paper's 3:1), (2) cold Archive load vs
// re-simulate + re-ingest of the same dataset (target >= 5x), (3) the cost
// of an incremental append that only covers new days, and (4) pruned vs
// unpruned scans over the archived jobs table via zone maps.
// A final section measures the multi-threaded partition codec on a
// replicated jobs table sized so the one-thread encode costs >= 200 ms
// (encode and decode at 1/2/4/8 threads with per-thread MB/s, asserting
// byte-identical output), plus the transactional commit's I/O overhead (op
// counts and the fsync durability tax; DESIGN.md §14), and writes everything
// to BENCH_archive.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "compress/lzss.h"

namespace {

using namespace supremm;
using bench::seconds_since;

double mb(std::uint64_t bytes) { return static_cast<double>(bytes) / (1024.0 * 1024.0); }

std::uint64_t raw_bytes(const std::vector<taccstats::RawFile>& files) {
  std::uint64_t total = 0;
  for (const auto& f : files) total += f.content.size();
  return total;
}

std::uint64_t archive_bytes(const archive::Manifest& manifest) {
  std::uint64_t total = 0;
  for (const auto& p : manifest.partitions) total += p.bytes;
  return total;
}

/// `src` repeated `k` times, built through the bulk column loaders so the
/// codec bench can scale its workload without per-row overhead.
warehouse::Table replicate_table(const warehouse::Table& src, std::size_t k) {
  std::vector<std::pair<std::string, warehouse::ColType>> schema;
  for (const auto& c : src.columns()) schema.emplace_back(c.name(), c.type());
  warehouse::Table out(src.name(), std::move(schema));
  for (const auto& c : src.columns()) {
    if (c.type() == warehouse::ColType::kString) {
      const auto dict = c.dict();
      out.col(c.name()).set_dict(std::vector<std::string>(dict.begin(), dict.end()));
    }
  }
  for (std::size_t rep = 0; rep < k; ++rep) {
    for (const auto& c : src.columns()) {
      auto& dst = out.col(c.name());
      switch (c.type()) {
        case warehouse::ColType::kDouble: dst.append_doubles(c.doubles()); break;
        case warehouse::ColType::kInt64: dst.append_int64s(c.int64s()); break;
        case warehouse::ColType::kString: dst.append_codes(c.codes()); break;
      }
    }
  }
  out.finalize_rows();
  return out;
}

}  // namespace

int main() {
  namespace fs = std::filesystem;
  bench::print_experiment_header(
      "Persistent archive: compression, cold load, incremental append, pruning",
      "~60 GB/day of raw data compressed 60 GB -> 20 GB (~3:1) and loaded "
      "into a warehouse so questions never re-read the raw stream (sec 1.2)");

  const fs::path dir = fs::temp_directory_path() / "supremm_bench_archive";
  fs::remove_all(dir);

  pipeline::PipelineConfig cfg;
  cfg.spec = facility::scaled(facility::ranger(), 0.02);
  cfg.start = 0;
  cfg.span = 14 * common::kDay;
  cfg.seed = bench::kSeed;
  cfg.with_maintenance = true;

  // Baseline: the only way to answer a question without an archive is to
  // re-simulate the facility and re-ingest everything.
  auto t0 = std::chrono::steady_clock::now();
  const auto live = pipeline::run_pipeline(cfg);
  const double t_live = seconds_since(t0);
  bench::print_run_info(live);

  // (1) Compression ratio over the raw collector output, per the paper's
  // 60 GB -> 20 GB figure. The archive compresses columnar encodings, not
  // raw text, but the codec and the claim are exercised on the same data.
  const std::uint64_t raw = raw_bytes(live.files);
  std::uint64_t lzss = 0;
  t0 = std::chrono::steady_clock::now();
  for (const auto& f : live.files) lzss += compress::compress(f.content).size();
  const double t_comp = seconds_since(t0);
  std::printf("\n[compression] raw collector output %.1f MB -> %.1f MB LZSS "
              "(%.2f:1, paper ~3:1) at %.1f MB/s\n",
              mb(raw), mb(lzss), static_cast<double>(raw) / static_cast<double>(lzss),
              mb(raw) / t_comp);

  // (2) Build the archive (simulate + append all days), then cold-load it.
  cfg.archive_dir = (dir / "ranger").string();
  t0 = std::chrono::steady_clock::now();
  const auto built = pipeline::run_pipeline(cfg);
  const double t_build = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  const auto warm = pipeline::run_pipeline(cfg);
  const double t_load = seconds_since(t0);

  archive::Archive ar(cfg.archive_dir);
  const std::uint64_t on_disk = archive_bytes(ar.manifest());
  std::printf("\n[archive] %zu partitions, %.1f MB on disk (ingested tables, not raw "
              "samples; %.0fx below the %.1f MB raw stream), provenance \"%s\"\n",
              ar.manifest().partitions.size(), mb(on_disk),
              static_cast<double>(raw) / static_cast<double>(on_disk), mb(raw),
              warm.provenance.c_str());
  std::printf("%-28s %10s %12s %10s\n", "path", "time (s)", "jobs", "speedup");
  std::printf("%-28s %10.2f %12zu %10s\n", "re-simulate + re-ingest", t_live,
              live.result.jobs.size(), "1.0x");
  std::printf("%-28s %10.2f %12zu %10s\n", "simulate + archive append", t_build,
              built.result.jobs.size(), "-");
  std::printf("%-28s %10.2f %12zu %9.1fx\n", "cold archive load", t_load,
              warm.result.jobs.size(), t_live / t_load);

  // (3) Incremental append: extend the same archive by one day. Simulation
  // still covers the whole span, but ingest + persistence touch only the
  // provisional tail, not the 14 already-final days.
  cfg.span = 15 * common::kDay;
  t0 = std::chrono::steady_clock::now();
  const auto extended = pipeline::run_pipeline(cfg);
  const double t_inc = seconds_since(t0);
  std::printf("\n[incremental] +1 day: %.2f s, %zu of %zu partitions rewritten, "
              "%zu jobs total\n",
              t_inc, extended.archive_partitions_written,
              archive::Archive(cfg.archive_dir).manifest().partitions.size(),
              extended.result.jobs.size());

  // (4) Pruned vs unpruned scans. Read side: decode only the chunks whose
  // zone maps can match a one-day window. Query side: the same filter as a
  // bounds-carrying predicate (prunable) vs an opaque lambda (full scan).
  const double lo = 10.0 * common::kDay;
  const double hi = 11.0 * common::kDay;

  archive::Reader pruned_reader(cfg.archive_dir);
  t0 = std::chrono::steady_clock::now();
  const auto day_table =
      pruned_reader.table_pruned("jobs", {{.column = "end", .lo = lo, .hi = hi, .equals = {}}});
  const double t_pruned_read = seconds_since(t0);

  archive::Reader full_reader(cfg.archive_dir);
  t0 = std::chrono::steady_clock::now();
  const auto jobs = full_reader.table("jobs");
  const double t_full_read = seconds_since(t0);
  std::printf("\n[read]  full decode %.3f s (%zu rows); zone-pruned decode %.3f s "
              "(%zu rows, %zu of %zu chunks skipped)\n",
              t_full_read, jobs.rows(), t_pruned_read, day_table.rows(),
              pruned_reader.chunks_pruned(), pruned_reader.chunks_total());

  // Time-sorted series rows make zone maps exact: a one-day window touches
  // only that day's chunks. Small chunks so the table has something to prune.
  const auto series = full_reader.table("series", /*chunk_rows=*/128);
  const auto day_filter = [lo, hi](const warehouse::Table& t, std::size_t r) {
    const double v = t.col("time").as_double(r);
    return v >= lo && v <= hi;
  };
  const std::vector<warehouse::AggSpec> aggs = {
      {"active_nodes", warehouse::AggKind::kMean, "", ""},
      {"", warehouse::AggKind::kCount, "", "n"}};
  constexpr int kReps = 50;
  warehouse::QueryStats stats;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    warehouse::Query q(series);
    auto g = q.where(warehouse::between("time", lo, hi)).aggregate(aggs).run();
    stats = q.stats();
  }
  const double t_zone = seconds_since(t0) / kReps;
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    auto g = warehouse::Query(series).where(day_filter).aggregate(aggs).run();
  }
  const double t_opaque = seconds_since(t0) / kReps;
  std::printf("[query] one-day series aggregate over %zu rows: zone-pruned %.3f ms "
              "(scanned %zu rows, pruned %zu/%zu chunks) vs opaque full scan "
              "%.3f ms (%.1fx)\n",
              series.rows(), t_zone * 1e3, stats.rows_scanned, stats.chunks_pruned,
              stats.chunks_total, t_opaque * 1e3, t_opaque / t_zone);

  // (5) Thread-scaling of the partition codec. Blocks are independent LZSS
  // streams, so encode/decode parallelize on the shared worker pool; the
  // bytes must stay identical at every thread count. The raw jobs table
  // encodes in a few milliseconds — too little work to resolve scaling — so
  // the workload replicates it (bulk column loaders) until the one-thread
  // encode costs at least 200 ms warmed. Reps are interleaved across thread
  // counts and each leg keeps its best rep, so a system-wide slow phase
  // cannot bias one leg's speedup.
  bench::BenchJson json("archive");
  json.record("compression_ratio")
      .num("raw_mb", mb(raw))
      .num("lzss_mb", mb(lzss))
      .num("ratio", static_cast<double>(raw) / static_cast<double>(lzss));
  json.record("cold_load_vs_reingest")
      .num("reingest_s", t_live)
      .num("cold_load_s", t_load)
      .num("speedup", t_live / t_load);

  std::size_t replication = 1;
  warehouse::Table codec_table = replicate_table(jobs, replication);
  std::string serial_bytes;
  for (;;) {
    // The cold pass includes allocator growth; demand 2x the floor here so
    // warmed reps still clear 200 ms.
    const auto s0 = std::chrono::steady_clock::now();
    serial_bytes = archive::encode_partition(codec_table, 0);
    if (seconds_since(s0) >= 0.4 || replication >= 4096) break;
    replication *= 2;
    codec_table = replicate_table(jobs, replication);
  }
  const double part_mb = mb(serial_bytes.size());
  std::printf("\n[codec] workload: jobs table x%zu = %zu rows -> %.1f MB partition\n",
              replication, codec_table.rows(), part_mb);
  json.record("partition_codec_workload")
      .num("replication", static_cast<double>(replication))
      .num("rows", static_cast<double>(codec_table.rows()))
      .num("partition_mb", part_mb);

  constexpr std::size_t kCodecThreads[] = {1, 2, 4, 8};
  constexpr std::size_t kCodecLegs = std::size(kCodecThreads);
  constexpr int kCodecReps = 7;
  // Warm-up pass doubles as the byte-identity / round-trip assertion.
  for (const std::size_t threads : kCodecThreads) {
    const std::string bytes =
        archive::encode_partition(codec_table, 0, archive::kDefaultChunkRows, threads);
    if (bytes != serial_bytes) {
      std::fprintf(stderr, "FATAL: encode at %zu threads is not byte-identical\n", threads);
      return 1;
    }
    auto dp = archive::decode_partition(serial_bytes, nullptr, threads);
    if (dp.table.rows() != codec_table.rows()) std::abort();
  }
  std::vector<std::vector<double>> reps_enc(kCodecLegs), reps_dec(kCodecLegs);
  for (int rep = 0; rep < kCodecReps; ++rep) {
    for (std::size_t leg = 0; leg < kCodecLegs; ++leg) {
      t0 = std::chrono::steady_clock::now();
      const std::string bytes = archive::encode_partition(
          codec_table, 0, archive::kDefaultChunkRows, kCodecThreads[leg]);
      reps_enc[leg].push_back(seconds_since(t0));
      t0 = std::chrono::steady_clock::now();
      auto dp = archive::decode_partition(serial_bytes, nullptr, kCodecThreads[leg]);
      reps_dec[leg].push_back(seconds_since(t0));
    }
  }
  // Each leg reports its best rep (peak throughput); the serial baseline for
  // speedups is its *median* rep (typical cost), so ±1% ambient jitter on a
  // loaded host cannot read as a parallel regression when every leg actually
  // ran the same work. The real regression this bench guards against — a
  // fresh thread pool spawned per call — cost ~30%, far outside that band.
  auto best = [](std::vector<double>& v) { return *std::min_element(v.begin(), v.end()); };
  auto median = [](std::vector<double>& v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double enc_base = median(reps_enc[0]);
  const double dec_base = median(reps_dec[0]);
  for (std::size_t leg = 0; leg < kCodecLegs; ++leg) {
    const std::size_t threads = kCodecThreads[leg];
    const double t_enc = best(reps_enc[leg]);
    const double t_dec = best(reps_dec[leg]);
    json.record("partition_codec")
        .num("threads", static_cast<double>(threads))
        .num("encode_s", t_enc)
        .num("decode_s", t_dec)
        .num("encode_mb_s", part_mb / t_enc)
        .num("decode_mb_s", part_mb / t_dec)
        .num("encode_speedup_vs_1thread", enc_base / t_enc)
        .num("decode_speedup_vs_1thread", dec_base / t_dec);
    std::printf("[codec] %zu thread(s): encode %.3f s (%.1f MB/s, %.2fx), decode %.3f s "
                "(%.1f MB/s, %.2fx); bytes identical\n",
                threads, t_enc, part_mb / t_enc, enc_base / t_enc, t_dec,
                part_mb / t_dec, dec_base / t_dec);
  }
  // (6) Commit overhead: the transactional protocol (staging + COMMIT
  // journal + fsyncs + atomic publish) taxes every append. Build the same
  // archive twice through a counting policy — once durable, once with
  // fsyncs elided — to price the protocol's op count and durability tax.
  auto timed_build = [&](const fs::path& d, common::CountingIoPolicy* io) {
    fs::remove_all(d);
    etl::IngestConfig icfg;
    icfg.start = live.start;
    icfg.span = live.span;
    icfg.cluster = live.spec.name;
    archive::Archive a(d.string(), /*threads=*/1, io);
    const auto s0 = std::chrono::steady_clock::now();
    a.append(icfg, live.files, live.acct, live.lariat_records, live.catalogue,
             etl::project_science_map(*live.population), "bench commit overhead",
             live.start + live.span);
    return seconds_since(s0);
  };
  common::CountingIoPolicy durable;
  const double t_durable = timed_build(dir / "commit_durable", &durable);
  common::CountingIoPolicy relaxed(/*skip_fsync=*/true);
  const double t_relaxed = timed_build(dir / "commit_nofsync", &relaxed);
  const std::uint64_t fsyncs = durable.count(common::IoOp::kFsync) +
                               durable.count(common::IoOp::kFsyncDir);
  std::printf("\n[commit] %llu I/O ops (%llu fsyncs) to commit %.1f MB; append "
              "%.2f s durable vs %.2f s fsyncs elided (durability tax %.0f%%)\n",
              static_cast<unsigned long long>(durable.total()),
              static_cast<unsigned long long>(fsyncs), mb(durable.bytes_written()),
              t_durable, t_relaxed, 100.0 * (t_durable - t_relaxed) / t_durable);
  json.record("commit_overhead")
      .num("io_ops", static_cast<double>(durable.total()))
      .num("fsyncs", static_cast<double>(fsyncs))
      .num("bytes_written_mb", mb(durable.bytes_written()))
      .num("append_durable_s", t_durable)
      .num("append_nofsync_s", t_relaxed)
      .num("durability_tax", (t_durable - t_relaxed) / t_durable);
  json.write("BENCH_archive.json");

  fs::remove_all(dir);
  return 0;
}
