// Figure 4: node-hours consumed vs wasted (CPU-idle) node-hours per user on
// both clusters. Paper: average efficiency ~90% on Ranger and ~85% on
// Lonestar4 (the red lines); many heavy users sit well below the line, and
// one circled user per cluster spent 87% / 89% of their node-hours idle.
#include <iostream>

#include "bench_common.h"

namespace {

void analyze(const supremm::pipeline::PipelineResult& run, double paper_efficiency) {
  using namespace supremm;
  bench::print_run_info(run);
  const auto users = xdmod::user_efficiency(run.result.jobs);
  const double eff = xdmod::facility_efficiency(run.result.jobs);
  xdmod::render_efficiency(users, eff, 20).render(std::cout);
  std::printf("[measured] facility efficiency %.1f%% (paper: ~%.0f%%)\n", eff * 100.0,
              paper_efficiency * 100.0);

  const auto bad = xdmod::inefficient_heavy_users(run.result.jobs, 50.0, 0.5);
  if (!bad.empty()) {
    std::printf("[circled] worst heavy user: %s, %.0f node-hours, %.0f%% idle "
                "(paper: 87%%/89%% idle)\n\n",
                bad.front().user.c_str(), bad.front().node_hours,
                bad.front().idle_fraction() * 100.0);
  } else {
    std::printf("[circled] no heavy user below 50%% efficiency in this run\n\n");
  }
}

}  // namespace

int main() {
  using namespace supremm;
  bench::print_experiment_header(
      "Figure 4 (node-hours vs wasted node-hours)",
      "avg efficiency ~90% Ranger / ~85% Lonestar4; heavy users with 50%+ "
      "idle exist; one extreme user per cluster at 87-89% idle");
  analyze(bench::ranger_run(), 0.90);
  analyze(bench::lonestar4_run(), 0.85);
  return 0;
}
