// Figure 12: kernel density of memory used per node across jobs, for the
// time-average (black) and the per-job maximum (red), on both clusters.
// Paper: Ranger stays under 50% of its 32 GB even at the job maxima;
// Lonestar4 averages ~50% and its maxima approach full capacity.
#include <iostream>

#include "bench_common.h"

namespace {

void analyze(const supremm::pipeline::PipelineResult& run) {
  using namespace supremm;
  bench::print_run_info(run);
  const auto avg = xdmod::memory_distribution(run.result.jobs, /*use_max=*/false);
  const auto mx = xdmod::memory_distribution(run.result.jobs, /*use_max=*/true);
  xdmod::render_distribution(avg, 24).render(std::cout);
  std::cout << '\n';
  xdmod::render_distribution(mx, 24).render(std::cout);
  std::printf("[measured] %s: mem_used mode %.1f GB, mem_used_max mode %.1f GB, capacity "
              "%.0f GB\n\n",
              run.spec.name.c_str(), avg.density.mode(), mx.density.mode(),
              run.spec.node.mem_gb);
}

}  // namespace

int main() {
  using namespace supremm;
  bench::print_experiment_header(
      "Figure 12 (memory-per-node distributions, avg vs job max)",
      "Ranger < 50% of capacity even at job maxima; Lonestar4 ~50% on "
      "average with maxima approaching capacity");
  analyze(bench::ranger_run());
  analyze(bench::lonestar4_run());

  const auto wmean = [](const supremm::pipeline::PipelineResult& run, bool use_max) {
    supremm::stats::WeightedAccumulator acc;
    for (const auto& j : run.result.jobs) {
      acc.add(use_max ? j.mem_used_max_gb : j.mem_used_gb, j.node_hours);
    }
    return acc.mean();
  };
  const auto& r = bench::ranger_run();
  const auto& l = bench::lonestar4_run();
  const double r_max_frac = wmean(r, true) / r.spec.node.mem_gb;
  const double l_max_frac = wmean(l, true) / l.spec.node.mem_gb;
  const double l_avg_frac = wmean(l, false) / l.spec.node.mem_gb;
  std::printf("[check] Ranger job-max usage below 55%% of capacity: %s (%.0f%%)\n",
              r_max_frac < 0.55 ? "HOLDS" : "VIOLATED", r_max_frac * 100);
  std::printf("[check] Lonestar4 average usage near/above 45%% of capacity: %s (%.0f%%)\n",
              l_avg_frac > 0.45 ? "HOLDS" : "VIOLATED", l_avg_frac * 100);
  std::printf("[check] Lonestar4 maxima closer to capacity than Ranger: %s (%.0f%% vs "
              "%.0f%%)\n",
              l_max_frac > r_max_frac ? "HOLDS" : "VIOLATED", l_max_frac * 100,
              r_max_frac * 100);
  return 0;
}
