// Figure 2: normalized 8-metric usage profiles (radar-chart data) for the 5
// heaviest users of Ranger. Paper: "a typical user would have a value of one
// for each of the 8 metrics"; the top consumers deviate strongly and
// differently from each other (one FLOPS/network heavy, one IO-dominated
// with very high cpu_idle, ...).
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace supremm;
  bench::print_experiment_header(
      "Figure 2 (user usage profiles, Ranger)",
      "top-5 users' normalized profiles vary widely despite all being heavy "
      "consumers; values >1 = heavier than the average user");
  const auto& run = bench::ranger_run();
  bench::print_run_info(run);

  const xdmod::ProfileAnalyzer analyzer(run.result.jobs);
  const auto profiles = analyzer.top_profiles(xdmod::GroupBy::kUser, 5);
  xdmod::render_profile_comparison(profiles, analyzer.metrics()).render(std::cout);
  std::cout << '\n';
  for (const auto& p : profiles) {
    xdmod::render_profile(p).render(std::cout);
    std::cout << '\n';
  }

  // Variability check: the spread of normalized cpu_idle across the top-5
  // should be wide (the paper's "great variation in the usage profile").
  double lo = 1e9, hi = 0;
  for (const auto& p : profiles) {
    lo = std::min(lo, p.entry("cpu_idle").normalized);
    hi = std::max(hi, p.entry("cpu_idle").normalized);
  }
  std::printf("[check] normalized cpu_idle across top-5 spans %.2f .. %.2f "
              "(paper: order-of-magnitude variation)\n", lo, hi);
  return 0;
}
