// §3 claim: "At this frequency of execution [10 min], TACC_Stats generates
// an overhead of approximately 0.1%", and §4.1: "a raw data file of 0.5 MB
// per node per day". Microbenchmarks of the collect + serialize cycle on a
// Ranger-class node (16 cores), with the implied duty-cycle overhead and
// bytes/node/day reported as counters.
#include <benchmark/benchmark.h>

#include "facility/hardware.h"
#include "procsim/counters.h"
#include "taccstats/collectors.h"
#include "taccstats/schema.h"
#include "taccstats/writer.h"

namespace {

using namespace supremm;

procsim::NodeCounters make_node() {
  const auto spec = facility::ranger();
  procsim::NodeCounters nc("ranger-c0000", spec.node.arch, spec.node.sockets,
                           spec.node.cores_per_socket,
                           static_cast<std::uint64_t>(spec.node.mem_gb * 1024 * 1024));
  nc.net_devs.push_back({.name = "eth0"});
  nc.block_devs.push_back({.name = "sda"});
  for (const auto& fs : spec.lustre_filesystems) nc.lustre_mounts.push_back({.name = fs.name});
  nc.tmpfs_mounts.push_back({.name = "/dev/shm"});
  nc.tmpfs_mounts.push_back({.name = "/tmp"});
  // Populate counters so serialization sees realistic digit counts.
  for (auto& c : nc.cpu) {
    c.user = 123456789;
    c.idle = 987654321;
    c.system = 1234567;
  }
  nc.set_mem_used_kb(9ULL * 1024 * 1024);
  nc.ib.tx_bytes = 123456789012ULL;
  nc.lustre("scratch").write_bytes = 9876543210ULL;
  return nc;
}

void BM_CollectSample(benchmark::State& state) {
  const auto nc = make_node();
  const auto collectors = taccstats::standard_collectors(nc.arch());
  for (auto _ : state) {
    auto records = taccstats::collect_all(collectors, nc);
    benchmark::DoNotOptimize(records);
  }
}
BENCHMARK(BM_CollectSample);

void BM_SerializeSample(benchmark::State& state) {
  const auto nc = make_node();
  const auto collectors = taccstats::standard_collectors(nc.arch());
  const taccstats::SchemaRegistry reg(nc.arch());
  const taccstats::RawWriter writer(nc.hostname(), reg);
  taccstats::Sample s;
  s.time = 1;
  s.records = taccstats::collect_all(collectors, nc);
  std::uint64_t bytes = 0;
  std::string out;
  for (auto _ : state) {
    out.clear();
    writer.append_sample(s, out);
    bytes += out.size();
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_SerializeSample);

void BM_FullSampleCycle(benchmark::State& state) {
  // The agent's periodic work: read all counters, serialize, append.
  const auto nc = make_node();
  const auto collectors = taccstats::standard_collectors(nc.arch());
  const taccstats::SchemaRegistry reg(nc.arch());
  const taccstats::RawWriter writer(nc.hostname(), reg);
  std::string out;
  std::size_t sample_bytes = 0;
  for (auto _ : state) {
    out.clear();
    taccstats::Sample s;
    s.time = 1;
    s.records = taccstats::collect_all(collectors, nc);
    writer.append_sample(s, out);
    sample_bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["bytes/sample"] = static_cast<double>(sample_bytes);
  state.counters["MB/node/day"] =
      static_cast<double>(sample_bytes) * 144.0 / 1e6;  // 144 samples/day
  // Duty-cycle overhead at the paper's 10-minute cadence: per-sample wall
  // time / 600 s, in percent. With kInvert|kIsIterationInvariantRate the
  // counter evaluates to elapsed / (6 * iterations) = (t_sample / 600) * 100.
  // The paper reports ~0.1%; on real nodes the cost is dominated by /proc
  // reads, so the simulated figure is a lower bound.
  state.counters["overhead_pct_vs_600s"] = benchmark::Counter(
      6.0, benchmark::Counter::kIsIterationInvariantRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_FullSampleCycle);

}  // namespace

BENCHMARK_MAIN();
