// Figure 3: normalized profiles for the three most used molecular dynamics
// codes - NAMD, AMBER, GROMACS - on Ranger (R-) and Lonestar4 (L-).
//
// Paper shapes: NAMD and GROMACS run more efficiently (lower cpu_idle) than
// AMBER on both clusters; NAMD's pattern is very similar across clusters
// while GROMACS and AMBER differ between the two.
#include <cmath>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace supremm;
  bench::print_experiment_header(
      "Figure 3 (MD application profiles, Ranger vs Lonestar4)",
      "NAMD & GROMACS more CPU-efficient than AMBER on both clusters; NAMD "
      "similar across clusters, GROMACS/AMBER cluster-dependent");
  const auto& ranger = bench::ranger_run();
  const auto& ls4 = bench::lonestar4_run();
  bench::print_run_info(ranger);
  bench::print_run_info(ls4);

  const xdmod::ProfileAnalyzer ar(ranger.result.jobs);
  const xdmod::ProfileAnalyzer al(ls4.result.jobs);

  std::vector<xdmod::UsageProfile> profiles;
  for (const char* app : {"NAMD", "AMBER", "GROMACS"}) {
    auto pr = ar.profile(xdmod::GroupBy::kApp, app);
    pr.entity = std::string("R-") + app;
    profiles.push_back(std::move(pr));
    auto pl = al.profile(xdmod::GroupBy::kApp, app);
    pl.entity = std::string("L-") + app;
    profiles.push_back(std::move(pl));
  }
  xdmod::render_profile_comparison(profiles, ar.metrics()).render(std::cout);

  auto norm_idle = [&](const char* entity) {
    for (const auto& p : profiles) {
      if (p.entity == entity) return p.entry("cpu_idle").normalized;
    }
    return 0.0;
  };
  std::printf("\n[check] cpu_idle: R-AMBER %.2f > R-NAMD %.2f and > R-GROMACS %.2f : %s\n",
              norm_idle("R-AMBER"), norm_idle("R-NAMD"), norm_idle("R-GROMACS"),
              (norm_idle("R-AMBER") > norm_idle("R-NAMD") &&
               norm_idle("R-AMBER") > norm_idle("R-GROMACS"))
                  ? "HOLDS"
                  : "VIOLATED");
  std::printf("[check] cpu_idle: L-AMBER %.2f > L-NAMD %.2f and > L-GROMACS %.2f : %s\n",
              norm_idle("L-AMBER"), norm_idle("L-NAMD"), norm_idle("L-GROMACS"),
              (norm_idle("L-AMBER") > norm_idle("L-NAMD") &&
               norm_idle("L-AMBER") > norm_idle("L-GROMACS"))
                  ? "HOLDS"
                  : "VIOLATED");
  const double namd_gap = std::fabs(norm_idle("R-NAMD") - norm_idle("L-NAMD"));
  const double gromacs_gap = std::fabs(norm_idle("R-GROMACS") - norm_idle("L-GROMACS"));
  std::printf("[check] NAMD cross-cluster idle gap %.2f < GROMACS gap %.2f : %s\n",
              namd_gap, gromacs_gap, namd_gap < gromacs_gap ? "HOLDS" : "VIOLATED");
  return 0;
}
