// §1.2 claim: "the sheer volume of the data that must be addressed... at the
// granularity of jobs sampled frequently". Microbenchmarks of the ingest
// path: raw-format parsing throughput, the full ETL pipeline, and warehouse
// group-by queries over the job table.
//
// The grouped-aggregation section also measures the vectorized engine
// against a row-at-a-time reference (the pre-vectorization execution
// strategy: per-row std::function predicate dispatch, string-concatenated
// group keys) and the thread-scaling curve, writing both to
// BENCH_query.json for cross-PR tracking.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.h"

namespace {

using namespace supremm;

const pipeline::PipelineResult& micro_run() {
  static const pipeline::PipelineResult run =
      bench::make_run(facility::ranger(), 0.005, 4, /*maintenance=*/false);
  return run;
}

/// Synthetic wide job table for the aggregation benchmarks: large enough
/// (1M rows) that per-row dispatch cost dominates over cache warmup.
warehouse::Table make_agg_table(std::size_t rows) {
  warehouse::Table t("agg_bench", {{"user", warehouse::ColType::kString},
                                   {"app", warehouse::ColType::kString},
                                   {"end", warehouse::ColType::kInt64},
                                   {"cpu_idle", warehouse::ColType::kDouble},
                                   {"node_hours", warehouse::ColType::kDouble}});
  std::mt19937_64 rng(bench::kSeed);
  std::uniform_int_distribution<int> user(0, 199);
  std::uniform_int_distribution<int> app(0, 49);
  std::uniform_real_distribution<double> frac(0.0, 1.0);
  std::vector<std::string> users(200);
  std::vector<std::string> apps(50);
  // GCC 12 emits a bogus -Wrestrict for inlined std::string concatenation
  // here (GCC bug 105329); the loop is plain prefix + decimal-index naming.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wrestrict"
  for (std::size_t i = 0; i < users.size(); ++i) {
    users[i] = std::string("u") + std::to_string(i);
  }
  for (std::size_t i = 0; i < apps.size(); ++i) {
    apps[i] = std::string("app") + std::to_string(i);
  }
#pragma GCC diagnostic pop
  for (std::size_t r = 0; r < rows; ++r) {
    t.append()
        .set("user", users[static_cast<std::size_t>(user(rng))])
        .set("app", apps[static_cast<std::size_t>(app(rng))])
        .set("end", static_cast<std::int64_t>(r % (30 * common::kDay)))
        .set("cpu_idle", frac(rng))
        .set("node_hours", 1.0 + 100.0 * frac(rng));
  }
  t.rebuild_zone_index();
  return t;
}

const warehouse::Table& agg_table() {
  static const warehouse::Table t = make_agg_table(1'000'000);
  return t;
}

/// The pre-vectorization execution strategy, kept as a benchmark reference:
/// row-at-a-time scan, per-row std::function predicate, group keys built by
/// string concatenation, aggregation state addressed through a string map.
warehouse::Table legacy_group_by(const warehouse::Table& t,
                                 const std::function<bool(const warehouse::Table&,
                                                          std::size_t)>& pred) {
  struct State {
    double wvsum = 0, wsum = 0, sum = 0;
    std::int64_t n = 0;
  };
  std::unordered_map<std::string, std::size_t> groups;
  std::vector<std::string> order;
  std::vector<State> states;
  const auto& user = t.col("user");
  const auto& idle = t.col("cpu_idle");
  const auto& nh = t.col("node_hours");
  for (std::size_t r = 0; r < t.rows(); ++r) {
    if (pred && !pred(t, r)) continue;
    const std::string key(user.as_string(r));
    auto [it, inserted] = groups.emplace(key, states.size());
    if (inserted) {
      order.push_back(key);
      states.emplace_back();
    }
    State& s = states[it->second];
    const double v = idle.as_double(r);
    const double w = nh.as_double(r);
    s.wvsum += w * v;
    s.wsum += w;
    s.sum += w;
    ++s.n;
  }
  warehouse::Table out("agg", {{"user", warehouse::ColType::kString},
                               {"idle", warehouse::ColType::kDouble},
                               {"node_hours_sum", warehouse::ColType::kDouble},
                               {"n", warehouse::ColType::kInt64}});
  for (std::size_t g = 0; g < order.size(); ++g) {
    out.append()
        .set("user", order[g])
        .set("idle", states[g].wsum > 0 ? states[g].wvsum / states[g].wsum : 0.0)
        .set("node_hours_sum", states[g].sum)
        .set("n", states[g].n);
  }
  return out;
}

std::vector<warehouse::AggSpec> agg_specs() {
  return {{"cpu_idle", warehouse::AggKind::kWeightedMean, "node_hours", "idle"},
          {"node_hours", warehouse::AggKind::kSum, "", ""},
          {"", warehouse::AggKind::kCount, "", "n"}};
}

void BM_ParseRawFile(benchmark::State& state) {
  const auto& run = micro_run();
  const std::string& content = run.files.front().content;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto parsed = taccstats::parse_raw(content);
    benchmark::DoNotOptimize(parsed);
    bytes += content.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ParseRawFile);

void BM_IngestPipeline(benchmark::State& state) {
  const auto& run = micro_run();
  const auto science = etl::project_science_map(*run.population);
  etl::IngestConfig cfg;
  cfg.start = run.start;
  cfg.span = run.span;
  cfg.cluster = run.spec.name;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  const etl::IngestPipeline ingest(cfg);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto result = ingest.run(run.files, run.acct, run.lariat_records, run.catalogue, science);
    benchmark::DoNotOptimize(result);
    bytes += result.stats.bytes;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.counters["jobs"] = static_cast<double>(run.result.jobs.size());
}
BENCHMARK(BM_IngestPipeline)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_WarehouseGroupByLegacy(benchmark::State& state) {
  const auto& table = agg_table();
  for (auto _ : state) {
    auto g = legacy_group_by(table, {});
    benchmark::DoNotOptimize(g);
  }
  state.counters["rows"] = static_cast<double>(table.rows());
}
BENCHMARK(BM_WarehouseGroupByLegacy);

void BM_WarehouseGroupBy(benchmark::State& state) {
  const auto& table = agg_table();
  for (auto _ : state) {
    auto g = warehouse::Query(table)
                 .group_by({"user"})
                 .aggregate(agg_specs())
                 .threads(static_cast<std::size_t>(state.range(0)))
                 .run();
    benchmark::DoNotOptimize(g);
  }
  state.counters["rows"] = static_cast<double>(table.rows());
}
BENCHMARK(BM_WarehouseGroupBy)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ProfileAnalyzer(benchmark::State& state) {
  const auto& run = micro_run();
  for (auto _ : state) {
    xdmod::ProfileAnalyzer an(run.result.jobs);
    auto tops = an.top_profiles(xdmod::GroupBy::kUser, 5);
    benchmark::DoNotOptimize(tops);
  }
}
BENCHMARK(BM_ProfileAnalyzer);

void BM_PersistenceAnalysis(benchmark::State& state) {
  const auto& run = micro_run();
  for (auto _ : state) {
    auto rep = xdmod::persistence_analysis(run.result.series, {"mem_used", "cpu_idle"},
                                           {10, 30, 100});
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_PersistenceAnalysis);

using supremm::bench::seconds_since;

/// Median-of-reps wall time for `fn`.
template <typename Fn>
double time_median(int reps, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    times.push_back(seconds_since(t0));
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

/// The grouped-aggregation scaling study behind BENCH_query.json: legacy
/// row-at-a-time engine vs the vectorized engine at 1/2/4/8 threads.
void write_query_json() {
  const auto& table = agg_table();
  const double rows = static_cast<double>(table.rows());
  constexpr int kReps = 5;
  bench::BenchJson json("query");

  const double t_legacy = time_median(kReps, [&] {
    auto g = legacy_group_by(table, {});
    benchmark::DoNotOptimize(g);
  });
  json.record("group_by_legacy_scalar")
      .num("seconds", t_legacy)
      .num("rows_per_s", rows / t_legacy);

  double t1 = 0.0;
  for (const std::size_t threads : {1, 2, 4, 8}) {
    const double t = time_median(kReps, [&] {
      auto g = warehouse::Query(table)
                   .group_by({"user"})
                   .aggregate(agg_specs())
                   .threads(threads)
                   .run();
      benchmark::DoNotOptimize(g);
    });
    if (threads == 1) t1 = t;
    json.record("group_by_vectorized")
        .num("threads", static_cast<double>(threads))
        .num("seconds", t)
        .num("rows_per_s", rows / t)
        .num("speedup_vs_1thread", t1 / t)
        .num("speedup_vs_legacy", t_legacy / t);
    std::printf("[scaling] group-by %zu thread(s): %.4f s (%.1f Mrows/s, %.2fx vs "
                "legacy, %.2fx vs 1 thread)\n",
                threads, t, rows / t / 1e6, t_legacy / t, t1 / t);
  }
  json.write("BENCH_query.json");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_query_json();
  return 0;
}
