// §1.2 claim: "the sheer volume of the data that must be addressed... at the
// granularity of jobs sampled frequently". Microbenchmarks of the ingest
// path: raw-format parsing throughput, the full ETL pipeline, and warehouse
// group-by queries over the job table.
#include <benchmark/benchmark.h>

#include "bench_common.h"

namespace {

using namespace supremm;

const pipeline::PipelineResult& micro_run() {
  static const pipeline::PipelineResult run =
      bench::make_run(facility::ranger(), 0.005, 4, /*maintenance=*/false);
  return run;
}

void BM_ParseRawFile(benchmark::State& state) {
  const auto& run = micro_run();
  const std::string& content = run.files.front().content;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto parsed = taccstats::parse_raw(content);
    benchmark::DoNotOptimize(parsed);
    bytes += content.size();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ParseRawFile);

void BM_IngestPipeline(benchmark::State& state) {
  const auto& run = micro_run();
  const auto science = etl::project_science_map(*run.population);
  etl::IngestConfig cfg;
  cfg.start = run.start;
  cfg.span = run.span;
  cfg.cluster = run.spec.name;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  const etl::IngestPipeline ingest(cfg);
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    auto result = ingest.run(run.files, run.acct, run.lariat_records, run.catalogue, science);
    benchmark::DoNotOptimize(result);
    bytes += result.stats.bytes;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  state.counters["jobs"] = static_cast<double>(run.result.jobs.size());
}
BENCHMARK(BM_IngestPipeline)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_WarehouseGroupBy(benchmark::State& state) {
  const auto& run = micro_run();
  const auto table = etl::to_table(run.result.jobs);
  for (auto _ : state) {
    auto g = warehouse::Query(table)
                 .group_by({"user"})
                 .aggregate({{"cpu_idle", warehouse::AggKind::kWeightedMean, "node_hours",
                              "idle"},
                             {"node_hours", warehouse::AggKind::kSum, "", ""},
                             {"", warehouse::AggKind::kCount, "", "n"}})
                 .run();
    benchmark::DoNotOptimize(g);
  }
  state.counters["rows"] = static_cast<double>(table.rows());
}
BENCHMARK(BM_WarehouseGroupBy);

void BM_ProfileAnalyzer(benchmark::State& state) {
  const auto& run = micro_run();
  for (auto _ : state) {
    xdmod::ProfileAnalyzer an(run.result.jobs);
    auto tops = an.top_profiles(xdmod::GroupBy::kUser, 5);
    benchmark::DoNotOptimize(tops);
  }
}
BENCHMARK(BM_ProfileAnalyzer);

void BM_PersistenceAnalysis(benchmark::State& state) {
  const auto& run = micro_run();
  for (auto _ : state) {
    auto rep = xdmod::persistence_analysis(run.result.series, {"mem_used", "cpu_idle"},
                                           {10, 30, 100});
    benchmark::DoNotOptimize(rep);
  }
}
BENCHMARK(BM_PersistenceAnalysis);

}  // namespace

BENCHMARK_MAIN();
