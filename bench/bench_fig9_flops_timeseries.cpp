// Figure 9: SSE FLOPS produced by Ranger over the analysis period. Paper:
// benchmarked peak 579 TF; actual long-term output < 20 TF on average with
// peaks < 50 TF - "only a small fraction of the benchmarked peak" - and
// irregular over time.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace supremm;
  bench::print_experiment_header(
      "Figure 9 (Ranger SSE FLOPS over time)",
      "average < 20 TF and peaks < 50 TF against a 579 TF peak (<4% / <9% of "
      "peak); output irregular over time");
  const auto& run = bench::ranger_run();
  bench::print_run_info(run);

  auto rep = xdmod::rebucket(run.result.series, "cpu_flops", 6 * common::kHour,
                             xdmod::SeriesAgg::kMean);
  rep.unit = "TF";
  rep.name = "Ranger SSE FLOPS";
  xdmod::render_series(rep, 60).render(std::cout);

  const double peak_tf = run.spec.peak_tflops();
  const double mean = rep.mean_value();
  const double mx = rep.max_value();
  std::printf("\n[measured] mean %.2f TF (%.1f%% of %.1f TF scaled peak); max %.2f TF "
              "(%.1f%% of peak)\n",
              mean, 100.0 * mean / peak_tf, peak_tf, mx, 100.0 * mx / peak_tf);
  std::printf("[paper]    mean < 20/579 = 3.5%% of peak; peaks < 50/579 = 8.6%%\n");
  std::printf("[check] mean below 6%% of peak: %s; max below 15%% of peak: %s\n",
              mean < 0.06 * peak_tf ? "HOLDS" : "VIOLATED",
              mx < 0.15 * peak_tf ? "HOLDS" : "VIOLATED");
  return 0;
}
