// Figure 7: three sample XDMoD reports built from TACC_Stats data on Ranger:
//   (a) average memory per core, broken up by parent science,
//   (b) CPU hours split into user / idle / system,
//   (c) Lustre filesystem traffic for the scratch, share and work mounts.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace supremm;
  bench::print_experiment_header(
      "Figure 7 (XDMoD system reports, Ranger)",
      "(a) memory/core by parent science; (b) CPU hours user/idle/system; "
      "(c) Lustre traffic with scratch >> work");
  const auto& run = bench::ranger_run();
  bench::print_run_info(run);

  // (a) Memory per core by parent science, weekly buckets.
  const auto science = xdmod::science_memory_report(run.result.jobs, run.spec.node.cores(),
                                                    0, run.span, common::kWeek);
  common::AsciiTable ta("Figure 7a: average memory per core (GB) by parent science, weekly");
  {
    std::vector<std::string> head = {"week"};
    for (const auto& s : science.sciences) head.push_back(s);
    ta.header(std::move(head));
    for (std::size_t b = 0; b < science.t.size(); ++b) {
      auto row = ta.add_row();
      row.cell(static_cast<std::int64_t>(b));
      for (std::size_t s = 0; s < science.sciences.size(); ++s) {
        row.cell(science.mem_gb_per_core[s][b], "%.2f");
      }
    }
  }
  ta.render(std::cout);
  std::cout << '\n';

  // (b) CPU hours user/idle/system, daily.
  const auto cpu = xdmod::cpu_hours_report(run.result.series, common::kDay);
  common::AsciiTable tb("Figure 7b: CPU core-hours per day (user / idle / system)");
  tb.header({"day", "user", "idle", "system"});
  for (std::size_t i = 0; i < cpu.t.size(); ++i) {
    tb.add_row()
        .cell(static_cast<std::int64_t>(i))
        .cell(cpu.user_core_h[i], "%.0f")
        .cell(cpu.idle_core_h[i], "%.0f")
        .cell(cpu.system_core_h[i], "%.0f");
  }
  tb.render(std::cout);
  std::cout << '\n';

  // (c) Lustre filesystem traffic, daily.
  const auto lfs = xdmod::lustre_report(run.result.series, common::kDay);
  common::AsciiTable tc("Figure 7c: Lustre traffic (MB/s facility aggregate) per day");
  tc.header({"day", "scratch", "work", "share"});
  double scratch_total = 0, work_total = 0;
  for (std::size_t i = 0; i < lfs.t.size(); ++i) {
    tc.add_row()
        .cell(static_cast<std::int64_t>(i))
        .cell(lfs.scratch_mb_s[i], "%.1f")
        .cell(lfs.work_mb_s[i], "%.2f")
        .cell(lfs.share_mb_s[i], "%.2f");
    scratch_total += lfs.scratch_mb_s[i];
    work_total += lfs.work_mb_s[i];
  }
  tc.render(std::cout);
  std::printf("\n[check] scratch traffic >> work traffic (purge/quota policy): %s "
              "(%.0fx)\n",
              scratch_total > 5 * work_total ? "HOLDS" : "VIOLATED",
              work_total > 0 ? scratch_total / work_total : 0.0);
  return 0;
}
