// §4.3 claim: the warehouse is consumed "through a web portal" by many
// concurrent stakeholders. This bench stands up the embedded serving tier
// (DESIGN.md §13) over a 1M-row corpus and drives it with 8 concurrent
// client threads drawing from a shared pool of generated requests, reporting
// throughput, exact p50/p99 client-observed latency, and the result-cache
// hit rate to BENCH_service.json.
//
// Before the load phase it asserts the service's core correctness contract
// in-bench: for every request in the pool, the cached-hit response is
// bit-identical (testkit table/stats oracle) to both the cold miss that
// produced it and a fresh run on a cache-disabled service.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "testkit/genquery.h"
#include "testkit/genrequest.h"
#include "testkit/oracle.h"

namespace {

using namespace supremm;
using bench::seconds_since;

constexpr std::size_t kRows = 1'000'000;
constexpr std::size_t kChunkRows = 1024;
constexpr std::size_t kPoolSize = 16;
constexpr int kClients = 8;                // acceptance floor: >= 8
constexpr int kRequestsPerClient = 40;

service::ServiceConfig make_config() {
  service::ServiceConfig cfg;
  cfg.workers = 4;
  cfg.queue_limit = 256;
  cfg.cache_entries = 64;
  return cfg;
}

void require_ok(const service::ResponsePtr& r, const std::string& text) {
  if (r->status != service::Status::kOk) {
    std::fprintf(stderr, "bench_service: request failed (%s): %s\n  %s\n",
                 service::to_string(r->status), r->error.c_str(), text.c_str());
    std::exit(1);
  }
}

/// Exact quantile from sorted raw samples (nearest-rank on n-1).
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main() {
  bench::print_experiment_header(
      "service", "§4.3: one warehouse serving many concurrent portal consumers");

  auto t0 = std::chrono::steady_clock::now();
  warehouse::Table corpus = testkit::make_corpus({kRows, kChunkRows, bench::kSeed});
  std::printf("[setup] corpus: %zu rows x %zu cols, chunk %zu (%.2fs build)\n",
              corpus.rows(), corpus.columns().size(), kChunkRows, seconds_since(t0));

  std::vector<std::string> pool;
  for (std::uint64_t i = 0; pool.size() < kPoolSize; ++i) {
    pool.push_back(testkit::make_request_text(bench::kSeed, i, "corpus"));
  }
  std::printf("[setup] request pool: %zu generated requests, %d clients x %d requests\n",
              pool.size(), kClients, kRequestsPerClient);

  bench::BenchJson json("service");
  json.record("setup")
      .num("rows", static_cast<double>(kRows))
      .num("chunk_rows", static_cast<double>(kChunkRows))
      .num("pool", static_cast<double>(pool.size()))
      .num("clients", kClients)
      .num("workers", make_config().workers);

  // Phase 1: cached answers must be bit-identical to fresh ones, for every
  // request in the pool. Miss + hit on a caching service, one cold run on a
  // cache-disabled service; any divergence is a hard bench failure.
  {
    service::Service hot(make_config());
    service::ServiceConfig cold_cfg = make_config();
    cold_cfg.cache_entries = 0;
    service::Service cold(cold_cfg);
    hot.publish_tables({{"corpus", corpus}});
    cold.publish_tables({{"corpus", corpus}});
    auto hot_sess = hot.session("identity-hot");
    auto cold_sess = cold.session("identity-cold");

    t0 = std::chrono::steady_clock::now();
    for (const std::string& text : pool) {
      auto miss = hot_sess.run(text);
      auto hit = hot_sess.run(text);
      auto fresh = cold_sess.run(text);
      require_ok(miss, text);
      require_ok(hit, text);
      require_ok(fresh, text);
      if (!hit->cache_hit || miss->cache_hit || fresh->cache_hit) {
        std::fprintf(stderr, "bench_service: unexpected cache behaviour\n  %s\n",
                     text.c_str());
        return 1;
      }
      for (const auto* other : {miss.get(), fresh.get()}) {
        if (auto diff = testkit::table_diff(*hit->table, *other->table)) {
          std::fprintf(stderr, "bench_service: cached table diverged: %s\n  %s\n",
                       diff->c_str(), text.c_str());
          return 1;
        }
        if (auto diff = testkit::stats_diff(hit->stats, other->stats)) {
          std::fprintf(stderr, "bench_service: cached stats diverged: %s\n  %s\n",
                       diff->c_str(), text.c_str());
          return 1;
        }
      }
    }
    std::printf("[identity] %zu requests: cache hit == cold miss == fresh service "
                "(bit-identical, %.2fs)\n", pool.size(), seconds_since(t0));
    json.record("identity")
        .num("requests_checked", static_cast<double>(pool.size()))
        .str("result", "bit-identical");
  }

  // Phase 2: concurrent load. Fresh service (cold cache) so the reported hit
  // rate reflects exactly this workload's sharing, not the identity phase.
  service::Service svc(make_config());
  svc.publish_tables({{"corpus", corpus}});

  std::vector<std::vector<double>> lat(kClients);
  t0 = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        auto sess = svc.session("client-" + std::to_string(c));
        lat[static_cast<std::size_t>(c)].reserve(kRequestsPerClient);
        for (int i = 0; i < kRequestsPerClient; ++i) {
          // Offset per client so the pool is walked in different orders and
          // first touches are spread across clients.
          const std::string& text =
              pool[static_cast<std::size_t>(c * 5 + i) % pool.size()];
          const auto r0 = std::chrono::steady_clock::now();
          auto resp = sess.run(text);
          lat[static_cast<std::size_t>(c)].push_back(seconds_since(r0) * 1e3);
          require_ok(resp, text);
        }
      });
    }
    for (auto& t : clients) t.join();
  }
  const double wall_s = seconds_since(t0);

  std::vector<double> all;
  for (const auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  const auto total = static_cast<double>(all.size());
  const double rps = total / wall_s;
  const double p50 = quantile(all, 0.50);
  const double p99 = quantile(all, 0.99);

  const auto m = svc.metrics();
  const auto looked_up = m.cache_hits + m.cache_misses;
  const double hit_rate =
      looked_up == 0 ? 0.0
                     : static_cast<double>(m.cache_hits) / static_cast<double>(looked_up);

  std::printf("[load] %d clients x %d requests in %.2fs: %.0f req/s\n",
              kClients, kRequestsPerClient, wall_s, rps);
  std::printf("[load] latency ms: p50 %.3f  p99 %.3f  max %.3f\n",
              p50, p99, all.back());
  std::printf("[load] cache: %llu hits / %llu lookups (%.1f%% hit rate)\n",
              static_cast<unsigned long long>(m.cache_hits),
              static_cast<unsigned long long>(looked_up), 100.0 * hit_rate);
  std::printf("[metrics] %s\n", svc.metrics_json().c_str());

  json.record("concurrent")
      .num("requests", total)
      .num("seconds", wall_s)
      .num("requests_per_second", rps)
      .num("p50_ms", p50)
      .num("p99_ms", p99)
      .num("max_ms", all.back())
      .num("cache_hit_rate", hit_rate)
      .num("queue_peak", static_cast<double>(m.queue_peak));
  json.write("BENCH_service.json");
  return 0;
}
