// Ablation: ETL thread scaling. The collection agents and the ingest
// pipeline are the parallel phases (hosts partitioned into fixed chunks,
// merged deterministically - DESIGN.md §7); workload generation and
// scheduling are inherently serial. This bench times the two parallel phases
// across thread counts and verifies the deterministic-merge contract.
#include <chrono>
#include <thread>
#include <cstdio>

#include "bench_common.h"

using supremm::bench::seconds_since;

int main() {
  using namespace supremm;
  bench::print_experiment_header(
      "Ablation (ETL parallelism)",
      "host-chunked parallel collection + ingest: scaling with threads, "
      "bit-identical results at every thread count");

  // Serial prologue shared by every configuration.
  const auto spec = facility::scaled(facility::ranger(), 0.02);
  const auto catalogue = facility::standard_catalogue();
  const auto population = facility::UserPopulation::generate(spec, catalogue, bench::kSeed);
  facility::WorkloadConfig wl;
  wl.span = 14 * common::kDay;
  wl.seed = bench::kSeed;
  auto requests = facility::generate_workload(spec, catalogue, population, wl);
  auto execs = facility::Scheduler::run(spec, std::move(requests), {});
  const auto acct = accounting::from_executions(spec, population, execs);
  const auto lrt = lariat::from_executions(spec, catalogue, population, execs);
  const auto science = etl::project_science_map(population);

  std::printf("host has %u hardware threads; speedups are bounded accordingly\n",
              std::thread::hardware_concurrency());
  double collect_baseline = 0, ingest_baseline = 0;
  double reference_idle = -1.0;
  std::printf("%-8s %-14s %-14s %-12s %-12s %-10s\n", "threads", "collect (s)",
              "ingest (s)", "collect x", "ingest x", "identical");
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    // Fresh engine per configuration (advancing counters is stateful).
    facility::FacilityEngine engine(spec, execs, {}, 0, wl.span, bench::kSeed);

    auto t0 = std::chrono::steady_clock::now();
    const auto outputs = taccstats::run_all_agents(engine, taccstats::AgentConfig{}, threads);
    const double collect_s = seconds_since(t0);

    std::vector<taccstats::RawFile> files;
    for (const auto& o : outputs) files.insert(files.end(), o.files.begin(), o.files.end());

    etl::IngestConfig cfg;
    cfg.span = wl.span;
    cfg.cluster = spec.name;
    cfg.threads = threads;
    cfg.hosts_per_chunk = 4;
    const etl::IngestPipeline pipeline(cfg);
    t0 = std::chrono::steady_clock::now();
    const auto result = pipeline.run(files, acct, lrt, catalogue, science);
    const double ingest_s = seconds_since(t0);

    if (collect_baseline == 0) {
      collect_baseline = collect_s;
      ingest_baseline = ingest_s;
    }
    double idle = 0;
    for (const auto& j : result.jobs) idle += j.cpu_idle;
    bool identical = true;
    if (reference_idle < 0) {
      reference_idle = idle;
    } else {
      identical = idle == reference_idle;
    }
    std::printf("%-8zu %-14.2f %-14.2f %-12.2f %-12.2f %-10s\n", threads, collect_s,
                ingest_s, collect_baseline / collect_s, ingest_baseline / ingest_s,
                identical ? "yes" : "NO (BUG)");
  }
  return 0;
}
