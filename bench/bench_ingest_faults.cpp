// Robustness bench: salvage-mode ingest throughput vs the strict path at
// increasing corruption levels. Strict mode is the baseline at 0% damage
// (where the two paths must also agree bit-for-bit); at 1% and 10% damage
// strict ingest is impossible (it aborts on the first malformed line), so
// the interesting number is how much the salvage machinery costs and how
// much of the facility's data it still delivers.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace {

using supremm::bench::seconds_since;

double total_mb(const std::vector<supremm::taccstats::RawFile>& files) {
  std::size_t bytes = 0;
  for (const auto& f : files) bytes += f.content.size();
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

}  // namespace

int main() {
  using namespace supremm;
  bench::print_experiment_header(
      "Ingest under fault injection",
      "salvage-mode ingest recovers a damaged facility's data at near-strict "
      "throughput; strict mode aborts on the first malformed line");

  // Serial prologue: one clean 14-day run at 2% Ranger scale.
  const auto spec = facility::scaled(facility::ranger(), 0.02);
  const auto catalogue = facility::standard_catalogue();
  const auto population = facility::UserPopulation::generate(spec, catalogue, bench::kSeed);
  facility::WorkloadConfig wl;
  wl.span = 14 * common::kDay;
  wl.seed = bench::kSeed;
  auto requests = facility::generate_workload(spec, catalogue, population, wl);
  auto execs = facility::Scheduler::run(spec, std::move(requests), {});
  facility::FacilityEngine engine(spec, execs, {}, 0, wl.span, bench::kSeed);
  const auto outputs = taccstats::run_all_agents(engine, taccstats::AgentConfig{});
  std::vector<taccstats::RawFile> clean_files;
  for (const auto& o : outputs) {
    clean_files.insert(clean_files.end(), o.files.begin(), o.files.end());
  }
  const auto clean_acct = accounting::from_executions(spec, population, execs);
  const auto clean_lrt = lariat::from_executions(spec, catalogue, population, execs);
  const auto science = etl::project_science_map(population);
  std::printf("[setup] %s: %zu nodes, %d days, %zu raw files, %.1f MB raw data\n",
              spec.name.c_str(), spec.node_count, static_cast<int>(wl.span / common::kDay),
              clean_files.size(), total_mb(clean_files));

  // Three corruption levels: none, ~1% of files damaged, ~10% of files
  // damaged (every fault kind composed, chaos-style).
  struct Level {
    const char* label;
    double scale;  // multiplier on the chaos profile's per-unit rates
  };
  const Level levels[] = {{"0%", 0.0}, {"~1%", 0.1}, {"~10%", 1.0}};

  etl::IngestConfig cfg;
  cfg.span = wl.span;
  cfg.cluster = spec.name;

  std::printf("%-8s %-8s %-12s %-10s %-12s %-12s %-12s %-10s\n", "damage", "mode",
              "ingest (s)", "MB/s", "samples", "quarantined", "jobs", "coverage");
  for (const Level& lvl : levels) {
    std::vector<taccstats::RawFile> files = clean_files;
    auto acct = clean_acct;
    auto lrt = clean_lrt;
    faultsim::InjectionReport report;
    if (lvl.scale > 0.0) {
      faultsim::FaultPlan plan = faultsim::FaultPlan::profile("chaos", bench::kSeed);
      for (auto& f : plan.faults) f.rate *= lvl.scale;
      report = faultsim::FaultInjector(plan).apply(files, acct, lrt);
    }
    const double mb = total_mb(files);

    for (const etl::IngestMode mode : {etl::IngestMode::kStrict, etl::IngestMode::kSalvage}) {
      cfg.mode = mode;
      const etl::IngestPipeline pipeline(cfg);
      const char* mode_name = mode == etl::IngestMode::kStrict ? "strict" : "salvage";
      const auto t0 = std::chrono::steady_clock::now();
      try {
        const auto result = pipeline.run(files, acct, lrt, catalogue, science);
        const double s = seconds_since(t0);
        std::printf("%-8s %-8s %-12.2f %-10.1f %-12llu %-12llu %-12zu %-10.4f\n",
                    lvl.label, mode_name, s, mb / s,
                    static_cast<unsigned long long>(result.stats.samples),
                    static_cast<unsigned long long>(result.stats.quarantined),
                    result.jobs.size(), result.quality.facility_coverage());
      } catch (const ParseError& e) {
        std::printf("%-8s %-8s aborted: first malformed line is fatal (%s)\n", lvl.label,
                    mode_name, e.what());
      }
    }
    if (report.any()) {
      std::printf("         injected: %llu truncations, %llu garbage, %llu interleaved, "
                  "%llu dups, %llu swaps, %llu resets, %llu rollovers, %llu lost ends, "
                  "%llu acct / %llu lariat dropped, %llu skewed hosts\n",
                  static_cast<unsigned long long>(report.files_truncated),
                  static_cast<unsigned long long>(report.garbage_lines),
                  static_cast<unsigned long long>(report.interleaved_rows),
                  static_cast<unsigned long long>(report.duplicated_samples),
                  static_cast<unsigned long long>(report.reorder_swaps),
                  static_cast<unsigned long long>(report.counter_resets),
                  static_cast<unsigned long long>(report.counter_rollovers),
                  static_cast<unsigned long long>(report.job_ends_dropped),
                  static_cast<unsigned long long>(report.acct_dropped),
                  static_cast<unsigned long long>(report.lariat_dropped),
                  static_cast<unsigned long long>(report.hosts_skewed));
    }
  }
  return 0;
}
