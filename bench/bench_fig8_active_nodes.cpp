// Figure 8: number of active nodes as a function of time on Ranger and
// Lonestar4. Paper: most nodes active throughout; the count drops to zero
// during planned/unplanned shutdowns; small variations as nodes finish jobs
// and await new assignment.
#include <iostream>

#include "bench_common.h"

namespace {

void analyze(const supremm::pipeline::PipelineResult& run) {
  using namespace supremm;
  bench::print_run_info(run);
  auto rep = xdmod::rebucket(run.result.series, "active_nodes", 6 * common::kHour,
                             xdmod::SeriesAgg::kMean);
  rep.unit = "nodes";
  rep.name = run.spec.name + " active nodes";
  xdmod::render_series(rep, 60).render(std::cout);

  // Shutdown visibility: at least one window where active == 0.
  std::size_t zero_buckets = 0;
  for (const double v : run.result.series.active_nodes) {
    if (v == 0.0) ++zero_buckets;
  }
  std::printf("[check] buckets at zero during shutdowns: %zu (maintenance windows: %zu) "
              "-> %s\n",
              zero_buckets, run.maintenance.size(),
              (run.maintenance.empty() || zero_buckets > 0) ? "HOLDS" : "VIOLATED");
  const double mean = rep.mean_value();
  std::printf("[measured] mean active nodes %.1f of %zu (%.0f%% utilization)\n\n", mean,
              run.spec.node_count,
              100.0 * mean / static_cast<double>(run.spec.node_count));
}

}  // namespace

int main() {
  using namespace supremm;
  bench::print_experiment_header(
      "Figure 8 (active nodes over time)",
      "near-full utilization with dips to zero at planned/unplanned "
      "shutdowns");
  analyze(bench::ranger_run());
  analyze(bench::lonestar4_run());
  return 0;
}
