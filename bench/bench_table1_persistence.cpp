// Table 1: persistence of 5 system metrics on Ranger - the ratio of the
// offset-difference standard deviation to the original standard deviation at
// offsets of 10/30/100/500/1000 minutes, with the per-metric log10-model fit
// R^2 in the last row.
//
// Paper values (Ranger): at 10 min the ratio drops to 0.12-0.31; by 1000 min
// all metrics saturate near 1.0; fits have R^2 >= 0.95; predictability order
// io_scratch_write < net_ib_tx ~ cpu_idle < mem_used ~ cpu_flops.
#include <cmath>
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace supremm;
  bench::print_experiment_header(
      "Table 1 (persistence ratios, Ranger)",
      "ratio ~0.12-0.31 at 10 min, ~1.0 at 1000 min; log fit R^2 >= 0.95; "
      "write least persistent, flops/mem most persistent");
  const auto& run = bench::ranger_run();
  bench::print_run_info(run);

  const auto rep = xdmod::persistence_analysis(run.result.series);
  xdmod::render_persistence(rep).render(std::cout);

  // Predictability ordering (paper: descending coefficient-of-variation
  // order modulo the ib/write swap). Report the 10-minute ratio per metric.
  std::printf("\n10-minute ratio (lower = more persistent/predictable):\n");
  for (std::size_t m = 0; m < rep.metrics.size(); ++m) {
    std::printf("  %-18s %.3f\n", rep.metrics[m].c_str(), rep.ratios[m][0]);
  }
  const auto idx = [&](const char* name) {
    for (std::size_t m = 0; m < rep.metrics.size(); ++m) {
      if (rep.metrics[m] == name) return m;
    }
    return std::size_t{0};
  };
  const bool ordering_holds =
      rep.ratios[idx("io_scratch_write")][0] > rep.ratios[idx("cpu_flops")][0] &&
      rep.ratios[idx("io_scratch_write")][0] > rep.ratios[idx("mem_used")][0];
  std::printf("\n[check] write less persistent than flops & mem: %s\n",
              ordering_holds ? "HOLDS (matches paper)" : "VIOLATED");
  double min_r2 = 1.0;
  for (const double r2 : rep.fit_r2) {
    if (!std::isnan(r2)) min_r2 = std::min(min_r2, r2);
  }
  std::printf("[check] min per-metric fit R^2 = %.3f (paper: >= 0.95)\n", min_r2);
  return 0;
}
