// Ablation: what does the sampling interval buy? The paper fixed 10 minutes
// as the TACC_Stats cadence (0.1% overhead, 0.5 MB/node/day). This bench
// sweeps the interval and reports the cost (data volume, samples) against
// the fidelity (error of measured job cpu_idle vs the simulator's ground
// truth, and the persistence fit quality), plus the SAR-style counterfactual
// of losing the job tag entirely.
#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "common/strings.h"
#include "compress/lzss.h"

int main() {
  using namespace supremm;
  bench::print_experiment_header(
      "Ablation (sampling interval)",
      "10-minute cadence chosen in §3; finer sampling costs linearly more "
      "data for diminishing fidelity gains");

  std::printf("%-10s %-12s %-10s %-14s %-12s %-10s\n", "interval", "MB/node/day",
              "samples", "idle MAE", "jobs<thresh", "fit R^2");
  for (const int minutes : {2, 5, 10, 30}) {
    pipeline::PipelineConfig cfg;
    cfg.spec = facility::scaled(facility::ranger(), 0.01);
    cfg.span = 14 * common::kDay;
    cfg.seed = bench::kSeed;
    cfg.agent.interval = minutes * common::kMinute;
    const auto run = pipeline::run_pipeline(cfg);

    const double mb_day = static_cast<double>(run.result.stats.bytes) / 1e6 /
                          static_cast<double>(run.spec.node_count) /
                          (static_cast<double>(run.span) / common::kDay);

    // Fidelity: mean absolute error of measured job idle vs ground truth.
    double mae = 0;
    std::size_t n = 0;
    for (const auto& j : run.result.jobs) {
      for (const auto& e : run.engine->executions()) {
        if (e.req.id != j.id) continue;
        mae += std::fabs(j.cpu_idle - e.req.behavior.idle_frac);
        ++n;
        break;
      }
    }
    mae = n > 0 ? mae / static_cast<double>(n) : 0.0;

    // Persistence fit (offsets must be multiples of the bucket).
    std::vector<double> offsets;
    for (const double o : {1.0, 3.0, 10.0, 50.0, 100.0}) {
      if (std::fmod(o * minutes, static_cast<double>(minutes)) == 0.0) {
        offsets.push_back(o * minutes);
      }
    }
    const auto rep =
        xdmod::persistence_analysis(run.result.series, {"mem_used"}, offsets);

    std::printf("%-10s %-12.2f %-10llu %-14.3f %-12llu %-10.3f\n",
                common::strprintf("%d min", minutes).c_str(), mb_day,
                static_cast<unsigned long long>(run.result.stats.samples), mae,
                static_cast<unsigned long long>(run.result.stats.jobs_excluded),
                rep.fit_r2[0]);

    if (minutes == 10) {
      // §4.1's archive claim at the paper's cadence: "60 GB (uncompressed)
      // or 20 GB (compressed) for the entire cluster per month" - a ~3x
      // ratio. Measure our LZSS codec on a sample of node-day files.
      std::string archive;
      for (std::size_t i = 0; i < run.files.size() && archive.size() < 8u << 20; ++i) {
        archive += run.files[i].content;
      }
      const double ratio = compress::compression_ratio(archive);
      std::printf("           [compression] LZSS ratio %.2f on %.1f MB of raw archive "
                  "(paper: ~0.33 with gzip)\n",
                  ratio, static_cast<double>(archive.size()) / 1e6);
    }
  }

  std::printf("\nSAR counterfactual: without the job tag (plain sysstat), job- and\n"
              "user-level metrics are unobtainable - only the facility series\n"
              "survives. Every Figure 2-5 analysis requires the tag TACC_Stats adds.\n");
  return 0;
}
