// Microbenchmarks for the SIMD kernel layer (src/warehouse/kernels.h,
// common/simd.h; DESIGN.md §15): per-ISA-tier rows/s for the predicate
// filter/refine kernels, the lane-8 aggregation kernels, the XOR-delta
// double codec, and LZSS compression with the vector match scanner. Each
// kernel's output is byte-compared against the scalar tier before timing —
// a divergence writes "bit_identical": 0 into BENCH_kernels.json, which
// scripts/check.sh treats as a failure. Speedups are best-of-reps over a
// cache-resident working set, so they measure kernel arithmetic, not DRAM.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/simd.h"
#include "compress/lzss.h"
#include "warehouse/kernels.h"

namespace {

using namespace supremm;
namespace simd = common::simd;
namespace kernels = warehouse::kernels;
using bench::seconds_since;

constexpr std::size_t kRows = 1 << 16;  // 512 KB of doubles: L2-resident
constexpr int kIters = 100;             // calls per timed rep
constexpr int kReps = 5;

/// Seconds per call, best of kReps reps of kIters calls, after a warm-up.
double time_call(const std::function<void()>& fn) {
  fn();
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < kReps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) fn();
    best = std::min(best, seconds_since(t0) / kIters);
  }
  return best;
}

std::string bytes_of(const void* p, std::size_t n) {
  return std::string(static_cast<const char*>(p), n);
}

struct TierCase {
  simd::Tier tier;
  const char* name;
};

std::vector<TierCase> available_tiers() {
  std::vector<TierCase> out = {{simd::Tier::kScalar, "scalar"}};
  if (simd::hardware_tier() >= simd::Tier::kSse2) out.push_back({simd::Tier::kSse2, "sse2"});
  if (simd::hardware_tier() >= simd::Tier::kAvx2) out.push_back({simd::Tier::kAvx2, "avx2"});
  return out;
}

}  // namespace

int main() {
  bench::print_experiment_header(
      "SIMD kernel layer: per-tier throughput and bit identity",
      "query/codec kernels must be bit-identical across ISA tiers so runtime "
      "dispatch never changes results (DESIGN.md sec 15)");

  const auto tiers = available_tiers();
  std::printf("[setup] hardware tier: %s; %zu rows per call, %d calls/rep, best of %d reps\n",
              std::string(simd::tier_name(simd::hardware_tier())).c_str(), kRows, kIters,
              kReps);

  std::mt19937_64 rng(bench::kSeed);
  std::uniform_real_distribution<double> ud(0.0, 100.0);
  std::vector<double> vals(kRows);
  std::vector<double> weights(kRows);
  std::vector<std::int32_t> codes(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    vals[i] = ud(rng);
    weights[i] = ud(rng) * 0.01;
    codes[i] = static_cast<std::int32_t>(rng() & 7);
  }
  // Refine input: every other row survives a notional earlier predicate.
  std::vector<std::uint32_t> sel_in(kRows / 2);
  for (std::size_t i = 0; i < sel_in.size(); ++i) sel_in[i] = static_cast<std::uint32_t>(2 * i);

  std::vector<std::uint32_t> out_idx(kRows);
  std::size_t out_count = 0;
  double lanes[kernels::kLanes];
  double wlanes[kernels::kLanes];

  bench::BenchJson json("kernels");
  bool all_identical = true;

  // Runs one kernel across tiers: `call` executes one pass into the shared
  // buffers, `digest` snapshots the output. The scalar tier is the reference;
  // later tiers must reproduce its digest byte for byte.
  auto bench_kernel = [&](const char* name,
                          const std::function<void(const kernels::KernelTable&)>& call,
                          const std::function<std::string()>& digest) {
    std::string ref;
    double scalar_sec = 0.0;
    for (const TierCase& tc : tiers) {
      const kernels::KernelTable& kt = kernels::table_for(tc.tier);
      call(kt);
      const std::string d = digest();
      const bool identical = tc.tier == simd::Tier::kScalar || d == ref;
      if (tc.tier == simd::Tier::kScalar) ref = d;
      all_identical = all_identical && identical;
      const double sec = time_call([&] { call(kt); });
      if (tc.tier == simd::Tier::kScalar) scalar_sec = sec;
      const double rate = static_cast<double>(kRows) / sec;
      const double speedup = scalar_sec / sec;
      json.record(name)
          .str("tier", tc.name)
          .num("rows_per_s", rate)
          .num("speedup_vs_scalar", speedup)
          .num("bit_identical", identical ? 1.0 : 0.0);
      std::printf("[%-18s] %-6s %10.1f Mrows/s  %5.2fx  %s\n", name, tc.name, rate / 1e6,
                  speedup, identical ? "bits ok" : "BIT DIVERGENCE");
    }
  };

  const double lo = 25.0;
  const double hi = 75.0;
  const std::int32_t eq_code = 3;

  bench_kernel(
      "filter_f64_range",
      [&](const kernels::KernelTable& kt) {
        out_count = kt.filter_f64_range(vals.data(), 0, kRows, lo, hi, out_idx.data());
      },
      [&] { return bytes_of(out_idx.data(), out_count * 4) + std::to_string(out_count); });

  bench_kernel(
      "filter_codes_eq",
      [&](const kernels::KernelTable& kt) {
        out_count = kt.filter_codes_eq(codes.data(), 0, kRows, eq_code, out_idx.data());
      },
      [&] { return bytes_of(out_idx.data(), out_count * 4) + std::to_string(out_count); });

  bench_kernel(
      "refine_f64_range",
      [&](const kernels::KernelTable& kt) {
        out_count = kt.refine_f64_range(vals.data(), sel_in.data(), sel_in.size(), lo, hi,
                                        out_idx.data());
      },
      [&] { return bytes_of(out_idx.data(), out_count * 4) + std::to_string(out_count); });

  bench_kernel(
      "refine_codes_eq",
      [&](const kernels::KernelTable& kt) {
        out_count = kt.refine_codes_eq(codes.data(), sel_in.data(), sel_in.size(), eq_code,
                                       out_idx.data());
      },
      [&] { return bytes_of(out_idx.data(), out_count * 4) + std::to_string(out_count); });

  auto lanes_digest = [&] { return bytes_of(lanes, sizeof(lanes)); };

  bench_kernel(
      "sum_lanes",
      [&](const kernels::KernelTable& kt) {
        std::fill(lanes, lanes + kernels::kLanes, 0.0);
        kt.sum_lanes(vals.data(), nullptr, 0, kRows, lanes);
      },
      lanes_digest);

  // Gather variant: aggregate through the refine survivor list instead of a
  // contiguous slice (the post-predicate shape inside Query::run).
  const std::size_t nsel = sel_in.size();
  bench_kernel(
      "sum_lanes_gather",
      [&](const kernels::KernelTable& kt) {
        std::fill(lanes, lanes + kernels::kLanes, 0.0);
        kt.sum_lanes(vals.data(), sel_in.data(), 0, nsel, lanes);
      },
      lanes_digest);

  bench_kernel(
      "min_lanes",
      [&](const kernels::KernelTable& kt) {
        std::fill(lanes, lanes + kernels::kLanes, std::numeric_limits<double>::infinity());
        kt.min_lanes(vals.data(), nullptr, 0, kRows, lanes);
      },
      lanes_digest);

  bench_kernel(
      "max_lanes",
      [&](const kernels::KernelTable& kt) {
        std::fill(lanes, lanes + kernels::kLanes, -std::numeric_limits<double>::infinity());
        kt.max_lanes(vals.data(), nullptr, 0, kRows, lanes);
      },
      lanes_digest);

  bench_kernel(
      "dot_lanes",
      [&](const kernels::KernelTable& kt) {
        std::fill(lanes, lanes + kernels::kLanes, 0.0);
        std::fill(wlanes, wlanes + kernels::kLanes, 0.0);
        kt.dot_lanes(vals.data(), weights.data(), nullptr, 0, kRows, wlanes, lanes);
      },
      [&] { return bytes_of(lanes, sizeof(lanes)) + bytes_of(wlanes, sizeof(wlanes)); });

  // The XOR-delta double codec and the LZSS match scanner dispatch on the
  // process-wide active tier rather than an explicit table.
  std::vector<std::uint64_t> deltas(kRows);
  {
    std::string ref;
    double scalar_sec = 0.0;
    for (const TierCase& tc : tiers) {
      simd::set_tier(tc.tier);
      simd::xor_delta_encode_f64(vals.data(), kRows, 0, deltas.data());
      const std::string d = bytes_of(deltas.data(), kRows * 8);
      const bool identical = tc.tier == simd::Tier::kScalar || d == ref;
      if (tc.tier == simd::Tier::kScalar) ref = d;
      all_identical = all_identical && identical;
      const double sec = time_call(
          [&] { simd::xor_delta_encode_f64(vals.data(), kRows, 0, deltas.data()); });
      if (tc.tier == simd::Tier::kScalar) scalar_sec = sec;
      const double rate = static_cast<double>(kRows) / sec;
      json.record("xor_delta_encode")
          .str("tier", tc.name)
          .num("rows_per_s", rate)
          .num("speedup_vs_scalar", scalar_sec / sec)
          .num("bit_identical", identical ? 1.0 : 0.0);
      std::printf("[%-18s] %-6s %10.1f Mrows/s  %5.2fx  %s\n", "xor_delta_encode", tc.name,
                  rate / 1e6, scalar_sec / sec, identical ? "bits ok" : "BIT DIVERGENCE");
    }
  }

  // Decode is a serial prefix-XOR recurrence — one implementation for every
  // tier; its win over the old byte reader is bulk bounds checking.
  {
    std::vector<double> decoded(kRows);
    const auto* src = reinterpret_cast<const unsigned char*>(deltas.data());
    simd::xor_delta_decode_f64(src, kRows, 0, decoded.data());
    const bool identical = std::memcmp(decoded.data(), vals.data(), kRows * 8) == 0;
    all_identical = all_identical && identical;
    const double sec =
        time_call([&] { simd::xor_delta_decode_f64(src, kRows, 0, decoded.data()); });
    const double rate = static_cast<double>(kRows) / sec;
    json.record("xor_delta_decode")
        .str("tier", "any")
        .num("rows_per_s", rate)
        .num("speedup_vs_scalar", 1.0)
        .num("bit_identical", identical ? 1.0 : 0.0);
    std::printf("[%-18s] %-6s %10.1f Mrows/s  %5.2fx  %s (round-trips encode)\n",
                "xor_delta_decode", "any", rate / 1e6, 1.0,
                identical ? "bits ok" : "BIT DIVERGENCE");
  }

  // LZSS with the vector match scanner: a repetitive buffer with scattered
  // mutations, so the hash chains stay busy and matches run long.
  {
    std::string block(256, '\0');
    for (char& c : block) c = static_cast<char>(rng() & 0xff);
    std::string lz;
    lz.reserve(1 << 20);
    while (lz.size() < (1 << 20)) {
      lz += block;
      lz[lz.size() - 1 - (rng() % block.size())] ^= 1;
    }
    std::string ref;
    double scalar_sec = 0.0;
    for (const TierCase& tc : tiers) {
      simd::set_tier(tc.tier);
      const std::string d = compress::compress(lz);
      const bool identical = tc.tier == simd::Tier::kScalar || d == ref;
      if (tc.tier == simd::Tier::kScalar) ref = d;
      all_identical = all_identical && identical;
      double best = std::numeric_limits<double>::infinity();
      for (int r = 0; r < kReps; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        const std::string c = compress::compress(lz);
        best = std::min(best, seconds_since(t0));
      }
      if (tc.tier == simd::Tier::kScalar) scalar_sec = best;
      const double mbs = static_cast<double>(lz.size()) / (1024.0 * 1024.0) / best;
      json.record("lzss_compress")
          .str("tier", tc.name)
          .num("mb_s", mbs)
          .num("speedup_vs_scalar", scalar_sec / best)
          .num("bit_identical", identical ? 1.0 : 0.0);
      std::printf("[%-18s] %-6s %10.1f MB/s     %5.2fx  %s\n", "lzss_compress", tc.name, mbs,
                  scalar_sec / best, identical ? "bits ok" : "BIT DIVERGENCE");
    }
  }

  simd::set_tier(simd::hardware_tier());
  json.write("BENCH_kernels.json");
  if (!all_identical) {
    std::fprintf(stderr, "FATAL: at least one kernel diverged from the scalar tier\n");
    return 1;
  }
  return 0;
}
