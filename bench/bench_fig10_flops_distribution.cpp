// Figure 10: kernel density of the Ranger FLOPS series (avoiding histogram
// binning choices, as the paper does via R's density()). Paper: the bulk of
// the distribution sits far below peak; a small mode at zero comes from
// shutdown periods.
#include <iostream>

#include "bench_common.h"

int main() {
  using namespace supremm;
  bench::print_experiment_header(
      "Figure 10 (Ranger FLOPS kernel density)",
      "typical output a few percent of peak; small density mode at zero from "
      "shutdown periods");
  const auto& run = bench::ranger_run();
  bench::print_run_info(run);

  const auto d = xdmod::flops_distribution(run.result.series);
  xdmod::render_distribution(d, 32).render(std::cout);

  const double peak_tf = run.spec.peak_tflops();
  std::printf("\n[measured] mode at %.2f TF (%.1f%% of scaled peak %.1f TF); KDE "
              "bandwidth %.3f; integral %.3f\n",
              d.density.mode(), 100.0 * d.density.mode() / peak_tf, peak_tf,
              d.density.bandwidth, d.density.integral());

  // Shutdown mode at zero: density near 0 TF must be non-negligible when
  // maintenance windows exist.
  const double at_zero = d.density.at(0.0);
  const double at_mode = d.density.at(d.density.mode());
  std::printf("[check] density(0)/density(mode) = %.3f -> zero mode %s (paper: 'small "
              "peak at zero... due to shutdown periods')\n",
              at_zero / at_mode,
              at_zero > 0.005 * at_mode ? "PRESENT" : "ABSENT");
  std::printf("[check] mode below 8%% of peak: %s\n",
              d.density.mode() < 0.08 * peak_tf ? "HOLDS" : "VIOLATED");
  return 0;
}
