// Figure 5: the usage profiles of the users circled in Figure 4. Paper: the
// Ranger user's cpu_idle is ~8x the average user; the Lonestar4 user's ~5x;
// every other metric is normal-to-light ("no obvious other resource usage to
// explain the high idle fraction").
#include <iostream>

#include "bench_common.h"

namespace {

void analyze(const supremm::pipeline::PipelineResult& run, double paper_idle_mult) {
  using namespace supremm;
  bench::print_run_info(run);
  const auto bad = xdmod::inefficient_heavy_users(run.result.jobs, 50.0, 0.5);
  if (bad.empty()) {
    std::printf("no heavy user below the 50%% efficiency bar in this run\n");
    return;
  }
  const xdmod::ProfileAnalyzer analyzer(run.result.jobs);
  const auto p = analyzer.profile(xdmod::GroupBy::kUser, bad.front().user);
  xdmod::render_profile(p).render(std::cout);
  const double idle_mult = p.entry("cpu_idle").normalized;
  std::printf("[measured] cpu_idle at %.1fx the average user (paper: ~%.0fx)\n",
              idle_mult, paper_idle_mult);
  bool others_normal = true;
  for (const auto& e : p.entries) {
    if (e.metric != "cpu_idle" && e.normalized > 2.0) others_normal = false;
  }
  std::printf("[check] all non-idle metrics <= 2x average: %s (paper: normal-to-light)\n\n",
              others_normal ? "HOLDS" : "VIOLATED");
}

}  // namespace

int main() {
  using namespace supremm;
  bench::print_experiment_header(
      "Figure 5 (profiles of the circled users)",
      "cpu_idle ~8x (Ranger) / ~5x (Lonestar4) the average user; all other "
      "metrics normal or light");
  analyze(bench::ranger_run(), 8.0);
  analyze(bench::lonestar4_run(), 5.0);
  return 0;
}
