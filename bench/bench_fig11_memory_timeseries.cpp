// Figure 11: memory used per node over time. Paper: Ranger (32 GB/node)
// averages < 10 GB with peaks < 16 GB (under half capacity); Lonestar4
// (24 GB/node) runs much closer to capacity, ~15 GB average peaking to ~20.
#include <iostream>

#include "bench_common.h"

namespace {

void analyze(const supremm::pipeline::PipelineResult& run, double paper_avg,
             double paper_peak) {
  using namespace supremm;
  bench::print_run_info(run);
  auto rep = xdmod::rebucket(run.result.series, "mem_used", 6 * common::kHour,
                             xdmod::SeriesAgg::kMean);
  rep.unit = "GB/node";
  rep.name = run.spec.name + " memory used per node";
  xdmod::render_series(rep, 40).render(std::cout);
  // Mean over buckets with data (ignore shutdown zeros).
  double sum = 0;
  std::size_t n = 0;
  double peak = 0;
  for (const double v : rep.v) {
    if (v <= 0) continue;
    sum += v;
    ++n;
    peak = std::max(peak, v);
  }
  const double mean = n > 0 ? sum / static_cast<double>(n) : 0.0;
  std::printf("[measured] %s: mean %.1f GB, peak %.1f GB of %.0f GB capacity "
              "(paper: ~%.0f GB avg, ~%.0f GB peak)\n\n",
              run.spec.name.c_str(), mean, peak, run.spec.node.mem_gb, paper_avg,
              paper_peak);
}

}  // namespace

int main() {
  using namespace supremm;
  bench::print_experiment_header(
      "Figure 11 (memory used per node over time)",
      "Ranger: <10 GB avg, <16 GB peak of 32; Lonestar4: ~15 GB avg peaking "
      "~20 of 24 (much closer to capacity)");
  analyze(bench::ranger_run(), 9.0, 16.0);
  analyze(bench::lonestar4_run(), 15.0, 20.0);

  // Cross-cluster shape: Lonestar4's memory pressure is relatively higher.
  const auto frac = [](const supremm::pipeline::PipelineResult& run) {
    double sum = 0;
    std::size_t n = 0;
    for (const double v : run.result.series.mem_gb_per_node) {
      if (v > 0) {
        sum += v;
        ++n;
      }
    }
    return sum / static_cast<double>(n) / run.spec.node.mem_gb;
  };
  const double fr = frac(bench::ranger_run());
  const double fl = frac(bench::lonestar4_run());
  std::printf("[check] capacity fraction: Lonestar4 %.0f%% > Ranger %.0f%% : %s\n",
              fl * 100, fr * 100, fl > fr ? "HOLDS" : "VIOLATED");
  return 0;
}
