// Shared setup for the per-figure/table benches: one standard scaled-down
// run per cluster, cached per process, plus output helpers.
//
// Scaling note (DESIGN.md §2): the paper measured the full Ranger (3936
// nodes, 20 months) and Lonestar4 (1088 nodes, 15 months). The benches
// default to 2% / 3% of the nodes over 30-60 simulated days, which preserves
// every *shape* the paper reports (normalized profiles, efficiency lines,
// persistence ratios, distribution forms) at laptop cost. Absolute facility
// totals (TF, node counts) scale with the node count and are reported
// alongside the scaled peak for comparison.
#pragma once

#include <cstdio>

#include "supremm/supremm.h"

namespace supremm::bench {

inline constexpr std::uint64_t kSeed = 2013;  // the paper's year

inline pipeline::PipelineResult make_run(const facility::ClusterSpec& preset, double scale,
                                         int days, bool maintenance) {
  pipeline::PipelineConfig cfg;
  cfg.spec = facility::scaled(preset, scale);
  cfg.start = 0;
  cfg.span = days * common::kDay;
  cfg.seed = kSeed;
  cfg.with_maintenance = maintenance;
  return pipeline::run_pipeline(cfg);
}

/// Ranger at 2% (79 nodes) for 30 days with maintenance windows.
inline const pipeline::PipelineResult& ranger_run() {
  static const pipeline::PipelineResult run =
      make_run(facility::ranger(), 0.02, 30, /*maintenance=*/true);
  return run;
}

/// Lonestar4 at 3% (33 nodes) for 30 days with maintenance windows.
inline const pipeline::PipelineResult& lonestar4_run() {
  static const pipeline::PipelineResult run =
      make_run(facility::lonestar4(), 0.03, 30, /*maintenance=*/true);
  return run;
}

inline void print_experiment_header(const char* id, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("Experiment %s\n", id);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

inline void print_run_info(const pipeline::PipelineResult& run) {
  std::printf("[setup] %s: %zu nodes x %zu cores, %.0f GB/node, %.1f TF scaled peak, "
              "%d days, %zu jobs ingested\n",
              run.spec.name.c_str(), run.spec.node_count, run.spec.node.cores(),
              run.spec.node.mem_gb, run.spec.peak_tflops(),
              static_cast<int>(run.span / common::kDay), run.result.jobs.size());
}

}  // namespace supremm::bench
