// Shared setup for the per-figure/table benches: one standard scaled-down
// run per cluster, cached per process, plus output helpers.
//
// Scaling note (DESIGN.md §2): the paper measured the full Ranger (3936
// nodes, 20 months) and Lonestar4 (1088 nodes, 15 months). The benches
// default to 2% / 3% of the nodes over 30-60 simulated days, which preserves
// every *shape* the paper reports (normalized profiles, efficiency lines,
// persistence ratios, distribution forms) at laptop cost. Absolute facility
// totals (TF, node counts) scale with the node count and are reported
// alongside the scaled peak for comparison.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "supremm/supremm.h"

namespace supremm::bench {

inline constexpr std::uint64_t kSeed = 2013;  // the paper's year

/// Elapsed wall-clock seconds since `t0`.
inline double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

inline pipeline::PipelineResult make_run(const facility::ClusterSpec& preset, double scale,
                                         int days, bool maintenance) {
  pipeline::PipelineConfig cfg;
  cfg.spec = facility::scaled(preset, scale);
  cfg.start = 0;
  cfg.span = days * common::kDay;
  cfg.seed = kSeed;
  cfg.with_maintenance = maintenance;
  return pipeline::run_pipeline(cfg);
}

/// Ranger at 2% (79 nodes) for 30 days with maintenance windows.
inline const pipeline::PipelineResult& ranger_run() {
  static const pipeline::PipelineResult run =
      make_run(facility::ranger(), 0.02, 30, /*maintenance=*/true);
  return run;
}

/// Lonestar4 at 3% (33 nodes) for 30 days with maintenance windows.
inline const pipeline::PipelineResult& lonestar4_run() {
  static const pipeline::PipelineResult run =
      make_run(facility::lonestar4(), 0.03, 30, /*maintenance=*/true);
  return run;
}

inline void print_experiment_header(const char* id, const char* paper_claim) {
  std::printf("==============================================================\n");
  std::printf("Experiment %s\n", id);
  std::printf("Paper: %s\n", paper_claim);
  std::printf("==============================================================\n");
}

/// Compile-target ISA, so numbers from different build hosts are comparable.
inline const char* host_isa() {
#if defined(__x86_64__) || defined(_M_X64)
  return "x86_64";
#elif defined(__aarch64__) || defined(_M_ARM64)
  return "aarch64";
#elif defined(__riscv)
  return "riscv";
#else
  return "unknown";
#endif
}

/// Machine-readable bench output (BENCH_*.json): a flat list of records,
/// each a label plus numeric/string fields, so the perf trajectory can be
/// tracked across PRs by external tooling. Every file carries a `hardware`
/// record (core count, ISA) so trajectories are only compared like-for-like.
/// Usage:
///
///   BenchJson json("query");
///   json.record("group_by_threads").num("threads", 8).num("seconds", t);
///   json.write("BENCH_query.json");
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {
    record("hardware")
        .num("cores", static_cast<double>(std::thread::hardware_concurrency()))
        .str("isa", host_isa());
  }

  class Record {
   public:
    Record& num(std::string key, double value) {
      fields_.emplace_back(std::move(key), value);
      return *this;
    }
    Record& str(std::string key, std::string value) {
      fields_.emplace_back(std::move(key), std::move(value));
      return *this;
    }

   private:
    friend class BenchJson;
    explicit Record(std::string label) : label_(std::move(label)) {}
    std::string label_;
    std::vector<std::pair<std::string, std::variant<double, std::string>>> fields_;
  };

  Record& record(std::string label) {
    records_.push_back(Record(std::move(label)));
    return records_.back();
  }

  /// Write {"bench": ..., "records": [...]} to `path` (overwrites).
  void write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"records\": [\n", bench_.c_str());
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f, "    {\"label\": \"%s\"", r.label_.c_str());
      for (const auto& [key, value] : r.fields_) {
        if (std::holds_alternative<double>(value)) {
          std::fprintf(f, ", \"%s\": %.9g", key.c_str(), std::get<double>(value));
        } else {
          std::fprintf(f, ", \"%s\": \"%s\"", key.c_str(),
                       std::get<std::string>(value).c_str());
        }
      }
      std::fprintf(f, "}%s\n", i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("[json] wrote %s (%zu records)\n", path.c_str(), records_.size());
  }

 private:
  std::string bench_;
  std::vector<Record> records_;
};

inline void print_run_info(const pipeline::PipelineResult& run) {
  std::printf("[setup] %s: %zu nodes x %zu cores, %.0f GB/node, %.1f TF scaled peak, "
              "%d days, %zu jobs ingested\n",
              run.spec.name.c_str(), run.spec.node_count, run.spec.node.cores(),
              run.spec.node.mem_gb, run.spec.peak_tflops(),
              static_cast<int>(run.span / common::kDay), run.result.jobs.size());
}

}  // namespace supremm::bench
