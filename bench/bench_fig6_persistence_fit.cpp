// Figure 6: the combined persistence-model fit - normalized offset standard
// deviation of all 5 metrics fit against log10(offset) - for Ranger and
// Lonestar4.
//
// Paper values: Ranger intercept -0.17 (p=0.016), slope 0.36 (p=5e-12),
// R^2=0.87; Lonestar4 intercept -0.28 (p=2e-5), slope 0.42 (p=9e-15),
// R^2=0.93. Lonestar4's slope is steeper, matching its shorter average job
// (446 vs 549 min): predictability is exhausted near the average job length.
#include <cstdio>

#include "bench_common.h"

namespace {

supremm::stats::PersistenceFit analyze(const supremm::pipeline::PipelineResult& run,
                                       double paper_intercept, double paper_slope,
                                       double paper_r2) {
  using namespace supremm;
  bench::print_run_info(run);
  const auto rep = xdmod::persistence_analysis(run.result.series);
  const auto& f = rep.combined.fit;
  std::printf("  combined fit: ratio = %.3f + %.3f * log10(offset_min)\n", f.intercept,
              f.slope);
  std::printf("  intercept p = %.2g, slope p = %.2g, R^2 = %.3f\n", f.intercept_p,
              f.slope_p, f.r2);
  std::printf("  paper:        ratio = %.2f + %.2f * log10(offset_min), R^2 = %.2f\n",
              paper_intercept, paper_slope, paper_r2);
  std::printf("  predictability horizon (ratio=1): %.0f min; node-hour weighted mean job "
              "length target: %.0f min\n\n",
              rep.combined.horizon_minutes(), run.spec.mean_job_minutes);
  return rep.combined;
}

}  // namespace

int main() {
  using namespace supremm;
  bench::print_experiment_header(
      "Figure 6 (combined persistence fits)",
      "Ranger: -0.17 + 0.36*log10(t), R^2~0.87; Lonestar4: -0.28 + "
      "0.42*log10(t), R^2~0.93; LS4 slope steeper (shorter jobs)");
  const auto ranger = analyze(bench::ranger_run(), -0.17, 0.36, 0.87);
  const auto ls4 = analyze(bench::lonestar4_run(), -0.28, 0.42, 0.93);
  std::printf("[check] positive slopes with significant p: %s\n",
              (ranger.fit.slope > 0 && ls4.fit.slope > 0 && ranger.fit.slope_p < 1e-4 &&
               ls4.fit.slope_p < 1e-4)
                  ? "HOLDS"
                  : "VIOLATED");
  std::printf("[check] Lonestar4 slope > Ranger slope (shorter jobs): %s "
              "(%.3f vs %.3f)\n",
              ls4.fit.slope > ranger.fit.slope ? "HOLDS" : "VIOLATED", ls4.fit.slope,
              ranger.fit.slope);
  return 0;
}
