// DESIGN.md §17: federated scatter-gather over the versioned binary shard
// protocol. This bench builds one large synthetic jobs population, places it
// across {1,2,5} shards with the adversarial (cluster, day)-cell placement,
// first gates on in-bench bit-identity — every merged scatter-gather answer
// must equal the single-warehouse engine bit-for-bit at every shard count —
// then measures coordinator-observed latency of a federated query mix per
// shard count against the single-warehouse baseline, plus the wire cost
// (partial bytes shipped per query). Results go to BENCH_federation.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "federation/executor.h"
#include "federation/federation.h"
#include "federation/transport.h"
#include "federation/wire.h"
#include "testkit/genrequest.h"
#include "testkit/oracle.h"

namespace {

using namespace supremm;
using bench::seconds_since;

constexpr std::size_t kRows = 300'000;
constexpr int kIterations = 25;  // passes over the query mix per shard count
constexpr std::size_t kShardCounts[] = {1, 2, 5};
constexpr std::size_t kThreads = 8;

/// The federated mix: facility-wide rollup shapes, per-dimension breakdowns,
/// cluster- and time-filtered queries (the ones catalog pruning bites on),
/// and raw-only shapes every shard must scan for.
const std::vector<std::string>& query_mix() {
  static const std::vector<std::string> mix = {
      "query jobs group week agg count(),sum(node_hours)",
      "query jobs group user agg sum(node_hours),wmean(cpu_idle,node_hours)",
      "query jobs group cluster,month agg sum(node_hours),count()",
      "query jobs where cluster = \"c0\" group month agg sum(node_hours),count()",
      "query jobs where end >= 1 and end <= 7257600 group user agg sum(node_hours),count()",
      "query jobs group user,app,cluster agg count(),sum(node_hours),max(mem_used_max_gb)",
      "query jobs where node_hours >= 100 group user agg count()",
      "query jobs group cluster agg mean(end)",
  };
  return mix;
}

/// Exact quantile from sorted raw samples (nearest-rank on n-1).
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

struct ParsedMix {
  std::vector<service::QuerySpec> specs;
  std::vector<testkit::QuerySpec> tspecs;
};

ParsedMix parse_mix() {
  ParsedMix out;
  for (const std::string& text : query_mix()) {
    service::QuerySpec spec = service::parse_request(text).query;
    spec.threads = kThreads;
    out.specs.push_back(std::move(spec));
  }
  return out;
}

struct FedBench {
  std::vector<std::unique_ptr<federation::ShardExecutor>> executors;
  std::shared_ptr<federation::Federation> fed;
};

FedBench make_fed(const std::vector<etl::JobSummary>& jobs, std::size_t nshards) {
  FedBench f;
  f.fed = std::make_shared<federation::Federation>();
  const auto slices = testkit::split_jobs_for_shards(jobs, nshards, bench::kSeed);
  for (std::size_t i = 0; i < slices.size(); ++i) {
    federation::ShardExecutor::Options opts;
    opts.rollups = true;
    auto ex = std::make_unique<federation::ShardExecutor>(
        "shard" + std::to_string(i), archive::jobs_table(slices[i]), opts);
    f.fed->add_shard(ex->info(), std::make_shared<federation::LoopbackTransport>(*ex));
    f.executors.push_back(std::move(ex));
  }
  return f;
}

}  // namespace

int main() {
  bench::print_experiment_header(
      "federation",
      "§17 multi-cluster scatter-gather: merged shard partials, bit-identical");

  auto t0 = std::chrono::steady_clock::now();
  const std::vector<etl::JobSummary> jobs =
      testkit::make_rollup_jobs({.rows = kRows, .seed = bench::kSeed});
  warehouse::Table ref = archive::jobs_table(jobs);
  warehouse::rollup::augment_jobs_table(ref);
  ref.rebuild_zone_index(archive::kDefaultChunkRows);
  std::printf("[setup] %zu jobs, single-warehouse reference built in %.2fs\n", kRows,
              seconds_since(t0));

  bench::BenchJson json("federation");
  json.record("setup")
      .num("rows", static_cast<double>(kRows))
      .num("mix", static_cast<double>(query_mix().size()))
      .num("threads", static_cast<double>(kThreads));

  const ParsedMix mix = parse_mix();

  // Single-warehouse baseline: the same compiled queries against the
  // un-sharded reference (what a non-federated deployment answers).
  std::vector<warehouse::Table> baseline;
  std::vector<double> base_ms;
  for (int it = 0; it < kIterations; ++it) {
    for (std::size_t i = 0; i < mix.specs.size(); ++i) {
      const auto tq = std::chrono::steady_clock::now();
      warehouse::Query q = service::compile(mix.specs[i], ref);
      warehouse::Table result = q.run();
      base_ms.push_back(seconds_since(tq) * 1e3);
      if (it == 0) baseline.push_back(std::move(result));
    }
  }
  std::sort(base_ms.begin(), base_ms.end());
  const double base_p50 = quantile(base_ms, 0.5);
  const double base_p99 = quantile(base_ms, 0.99);
  std::printf("[baseline] single warehouse: p50 %8.3f ms  p99 %8.3f ms\n", base_p50,
              base_p99);
  json.record("single_warehouse").num("p50_ms", base_p50).num("p99_ms", base_p99);

  for (const std::size_t nshards : kShardCounts) {
    t0 = std::chrono::steady_clock::now();
    const FedBench f = make_fed(jobs, nshards);
    const double build_s = seconds_since(t0);

    // Identity gate: every mix query, merged scatter-gather vs the baseline
    // table. Any bit difference is a hard bench failure.
    for (std::size_t i = 0; i < mix.specs.size(); ++i) {
      const service::RemoteResult res = f.fed->run(mix.specs[i]);
      if (!res.complete) {
        std::fprintf(stderr, "bench_federation: incomplete scatter at %zu shards\n",
                     nshards);
        return 1;
      }
      if (auto diff = testkit::table_diff(*res.table, baseline[i])) {
        std::fprintf(stderr,
                     "bench_federation: %zu-shard merge diverged from single "
                     "warehouse: %s\n  %s\n",
                     nshards, diff->c_str(), query_mix()[i].c_str());
        return 1;
      }
    }
    std::printf("[gate] %zu shards: %zu queries bit-identical to single warehouse\n",
                nshards, mix.specs.size());

    // Scatter-gather latency over the mix.
    std::vector<double> ms;
    std::size_t pruned_contacts = 0, total_reports = 0;
    for (int it = 0; it < kIterations; ++it) {
      for (const service::QuerySpec& spec : mix.specs) {
        const auto tq = std::chrono::steady_clock::now();
        const service::RemoteResult res = f.fed->run(spec);
        ms.push_back(seconds_since(tq) * 1e3);
        for (const auto& s : res.shards) {
          ++total_reports;
          if (s.outcome == service::RemoteShardReport::Outcome::kPruned) {
            ++pruned_contacts;
          }
        }
      }
    }
    std::sort(ms.begin(), ms.end());
    const double p50 = quantile(ms, 0.5);
    const double p99 = quantile(ms, 0.99);
    const double prune_rate =
        total_reports > 0
            ? static_cast<double>(pruned_contacts) / static_cast<double>(total_reports)
            : 0.0;

    // Wire cost: serialized partial bytes shipped back for one mix pass.
    std::size_t wire_bytes = 0;
    for (const service::QuerySpec& spec : mix.specs) {
      for (const auto& ex : f.executors) {
        const federation::wire::PartialMsg partial = ex->execute(spec, 0, "job_id");
        wire_bytes += federation::wire::pack_partial(partial).size();
      }
    }

    std::printf("[scatter] %zu shards: p50 %8.3f ms  p99 %8.3f ms  "
                "(vs baseline p50 %.2fx, prune rate %.2f, %zu partial bytes/pass)\n",
                nshards, p50, p99, p50 > 0 ? base_p50 / p50 : 0.0, prune_rate,
                wire_bytes);
    json.record("scatter_gather")
        .num("shards", static_cast<double>(nshards))
        .num("build_s", build_s)
        .num("p50_ms", p50)
        .num("p99_ms", p99)
        .num("p50_vs_baseline", base_p50 > 0 ? p50 / base_p50 : 0.0)
        .num("prune_rate", prune_rate)
        .num("partial_bytes_per_pass", static_cast<double>(wire_bytes));
  }

  json.write("BENCH_federation.json");
  std::printf("[done] federated answers bit-identical at every shard count\n");
  return 0;
}
