// DESIGN.md §16: XDMoD-style dashboards answer their standing queries from
// pre-aggregated rollup tables, not raw scans. This bench publishes a large
// synthetic jobs population, first gates on in-bench bit-identity — every
// dashboard request served from rollup cells must equal the forced raw scan
// bit-for-bit — then measures a dashboard-mix workload with rollups on vs
// off (p50/p99 client-observed latency, rollup hit rate) and the incremental
// maintenance cost per archive append. Results go to BENCH_rollup.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "testkit/genrequest.h"
#include "testkit/oracle.h"
#include "warehouse/rollup.h"

namespace {

using namespace supremm;
using bench::seconds_since;

constexpr std::size_t kRows = 400'000;
constexpr int kIterations = 40;  // passes over the dashboard mix per mode
constexpr double kSpeedupFloor = 5.0;

service::ServiceConfig make_config() {
  service::ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_limit = 256;
  cfg.cache_entries = 0;  // measure execution, not result caching
  return cfg;
}

/// The dashboard mix: the standing report shapes a portal refreshes — all
/// subsumable — plus two requests only the raw path can serve, so the miss
/// path stays honest in the same run.
const std::vector<std::string>& dashboard_mix() {
  static const std::vector<std::string> mix = {
      // Facility-wide time series at every grain.
      "query jobs group week agg count(),sum(node_hours)",
      "query jobs group month agg count(),sum(node_hours)",
      "query jobs group quarter agg sum(node_hours),wmean(cpu_idle,node_hours)",
      "query jobs group day agg count()",
      // Per-dimension breakdowns.
      "query jobs group user agg sum(node_hours),wmean(cpu_idle,node_hours)",
      "query jobs group app agg sum(node_hours),mean(mem_used_gb),count()",
      "query jobs group cluster,month agg sum(node_hours),count()",
      "query jobs group user,week agg sum(node_hours)",
      // Filtered dashboards: one cluster, one user, a quarter window.
      "query jobs where cluster = \"c0\" group month agg sum(node_hours),count()",
      "query jobs where user = \"u1\" group week agg sum(node_hours),wmean(cpu_idle,node_hours)",
      "query jobs where end >= 1 and end <= 7257600 group user agg sum(node_hours),count()",
      "query jobs where quarter >= 7257600 group app,quarter agg sum(node_hours)",
      "query jobs group user,app,cluster agg count(),sum(node_hours),max(mem_used_max_gb)",
      "query jobs where app = \"app2\" group quarter agg min(load_mean),max(load_mean)",
      // Raw-only shapes: a metric-range filter and a non-metric aggregate.
      "query jobs where node_hours >= 100 group user agg count()",
      "query jobs group cluster agg mean(end)",
  };
  return mix;
}

void require_ok(const service::ResponsePtr& r, const std::string& text) {
  if (r->status != service::Status::kOk) {
    std::fprintf(stderr, "bench_rollup: request failed (%s): %s\n  %s\n",
                 service::to_string(r->status), r->error.c_str(), text.c_str());
    std::exit(1);
  }
}

/// Exact quantile from sorted raw samples (nearest-rank on n-1).
double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

struct MixTiming {
  std::vector<double> ms;  // one client-observed sample per request
  double p50 = 0.0, p99 = 0.0;
};

MixTiming time_mix(service::Session& sess, int iterations) {
  MixTiming out;
  for (int it = 0; it < iterations; ++it) {
    for (const std::string& text : dashboard_mix()) {
      const auto t0 = std::chrono::steady_clock::now();
      const auto r = sess.run(text);
      out.ms.push_back(seconds_since(t0) * 1e3);
      require_ok(r, text);
    }
  }
  std::sort(out.ms.begin(), out.ms.end());
  out.p50 = quantile(out.ms, 0.5);
  out.p99 = quantile(out.ms, 0.99);
  return out;
}

}  // namespace

int main() {
  bench::print_experiment_header(
      "rollup", "§4.3 dashboards served from pre-aggregated tables, not raw scans");

  auto t0 = std::chrono::steady_clock::now();
  std::vector<etl::JobSummary> jobs =
      testkit::make_rollup_jobs({.rows = kRows, .seed = bench::kSeed});
  service::Service svc(make_config());
  svc.publish_jobs(jobs);
  std::printf("[setup] %zu jobs published, %.2fs (rollup cells: %zu)\n", kRows,
              seconds_since(t0), svc.metrics().rollup_cells);

  bench::BenchJson json("rollup");
  json.record("setup")
      .num("rows", static_cast<double>(kRows))
      .num("mix", static_cast<double>(dashboard_mix().size()))
      .num("cells", static_cast<double>(svc.metrics().rollup_cells));

  auto sess = svc.session("dashboard");

  // Phase 1 — identity gate: every request in the mix, rollup-served vs the
  // forced raw scan over the same snapshot. Any bit difference is a hard
  // bench failure.
  t0 = std::chrono::steady_clock::now();
  for (const std::string& text : dashboard_mix()) {
    warehouse::rollup::set_enabled(true);
    const auto served = sess.run(text);
    warehouse::rollup::set_enabled(false);
    const auto raw = sess.run(text);
    warehouse::rollup::set_enabled(true);
    require_ok(served, text);
    require_ok(raw, text);
    if (auto diff = testkit::table_diff(*served->table, *raw->table)) {
      std::fprintf(stderr, "bench_rollup: rollup-served diverged from raw: %s\n  %s\n",
                   diff->c_str(), text.c_str());
      return 1;
    }
  }
  std::printf("[gate] %zu requests bit-identical rollup vs raw (%.2fs)\n",
              dashboard_mix().size(), seconds_since(t0));

  // Phase 2 — dashboard-mix latency, rollups on vs off.
  const auto before = svc.metrics();
  warehouse::rollup::set_enabled(true);
  const MixTiming on = time_mix(sess, kIterations);
  const auto after = svc.metrics();
  warehouse::rollup::set_enabled(false);
  const MixTiming off = time_mix(sess, kIterations);
  warehouse::rollup::set_enabled(true);

  const double hits = static_cast<double>(after.rollup_hits - before.rollup_hits);
  const double reqs = static_cast<double>(on.ms.size());
  const double hit_rate = reqs > 0 ? hits / reqs : 0.0;
  const double speedup_p50 = on.p50 > 0 ? off.p50 / on.p50 : 0.0;
  std::printf("[mix] rollups ON:  p50 %8.3f ms  p99 %8.3f ms  (hit rate %.2f)\n",
              on.p50, on.p99, hit_rate);
  std::printf("[mix] rollups OFF: p50 %8.3f ms  p99 %8.3f ms\n", off.p50, off.p99);
  std::printf("[mix] p50 speedup: %.1fx (floor %.1fx)\n", speedup_p50, kSpeedupFloor);
  json.record("dashboard_mix")
      .num("requests_per_mode", reqs)
      .num("p50_on_ms", on.p50)
      .num("p99_on_ms", on.p99)
      .num("p50_off_ms", off.p50)
      .num("p99_off_ms", off.p99)
      .num("p50_speedup", speedup_p50)
      .num("hit_rate", hit_rate);

  // Phase 3 — incremental maintenance cost per append on a small simulated
  // archive: cells/partitions staged and jobs partitions re-read per commit.
  const auto& run = bench::ranger_run();
  const std::string dir = "bench_rollup_archive";
  std::filesystem::remove_all(dir);
  archive::Archive ar(dir);
  double append_s = 0.0;
  std::uint64_t cells = 0;
  std::size_t parts = 0, read_back = 0;
  const int kAppends = 4;
  for (int i = 1; i <= kAppends; ++i) {
    etl::IngestConfig cfg;
    cfg.start = run.start;
    const int days = i * 7;
    cfg.span = days * common::kDay;
    cfg.cluster = run.spec.name;
    const auto ta = std::chrono::steady_clock::now();
    const archive::AppendStats st = ar.append(
        cfg, run.files, run.acct, run.lariat_records, run.catalogue,
        etl::project_science_map(*run.population), "bench-rollup",
        run.start + days * common::kDay);
    append_s += seconds_since(ta);
    cells += st.rollup_cells_written;
    parts += st.rollup_partitions_written;
    read_back += st.rollup_days_read_back;
  }
  std::filesystem::remove_all(dir);
  std::printf(
      "[maint] %d appends: %.2fs total, %llu cells, %zu rollup partitions, "
      "%zu jobs partitions re-read\n",
      kAppends, append_s, static_cast<unsigned long long>(cells), parts, read_back);
  json.record("maintenance")
      .num("appends", kAppends)
      .num("seconds_total", append_s)
      .num("seconds_per_append", append_s / kAppends)
      .num("cells_written", static_cast<double>(cells))
      .num("rollup_partitions", static_cast<double>(parts))
      .num("jobs_days_read_back", static_cast<double>(read_back));

  json.write("BENCH_rollup.json");

  if (speedup_p50 < kSpeedupFloor) {
    std::fprintf(stderr,
                 "bench_rollup: p50 speedup %.2fx below the %.1fx acceptance floor\n",
                 speedup_p50, kSpeedupFloor);
    return 1;
  }
  std::printf("\nbench_rollup: OK\n");
  return 0;
}
